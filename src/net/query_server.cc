#include "net/query_server.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "common/json.h"

namespace deepeverest {
namespace net {

namespace {

/// An explicit `deadline_ms: 0` means "already due": the service rejects
/// the query at dispatch without running any inference. One nanosecond (the
/// smallest positive deadline the service accepts) is guaranteed to have
/// passed by the time a worker looks at the queue.
constexpr double kAlreadyDueSeconds = 1e-9;

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 400;  // bad layer/neuron indices
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kFailedPrecondition: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kCancelled: return 499;
    default: return 500;
  }
}

std::string ErrorJson(const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("message");
  w.String(status.message());
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void WriteError(HttpResponseWriter* writer, const Status& status) {
  writer->WriteResponse(HttpStatusForCode(status.code()), "application/json",
                        ErrorJson(status) + "\n");
}

void WriteEntries(const std::vector<core::ResultEntry>& entries,
                  JsonWriter* w) {
  w->BeginArray();
  for (const core::ResultEntry& e : entries) {
    w->BeginObject();
    w->Key("input_id");
    w->Uint(e.input_id);
    w->Key("value");
    w->Double(e.value);
    w->EndObject();
  }
  w->EndArray();
}

void WriteQueryStats(const core::QueryStats& stats, JsonWriter* w) {
  w->BeginObject();
  w->Key("inputs_run");
  w->Int(stats.inputs_run);
  w->Key("batches_run");
  w->Double(stats.batches_run);
  w->Key("rounds");
  w->Int(stats.rounds);
  w->Key("iqa_hits");
  w->Int(stats.iqa_hits);
  w->Key("wall_seconds");
  w->Double(stats.wall_seconds);
  w->Key("simulated_gpu_seconds");
  w->Double(stats.simulated_gpu_seconds);
  w->Key("queue_seconds");
  w->Double(stats.queue_seconds);
  w->Key("terminated_early");
  w->Bool(stats.terminated_early);
  w->EndObject();
}

std::string ResultJson(const core::TopKResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("entries");
  WriteEntries(result.entries, &w);
  w.Key("stats");
  WriteQueryStats(result.stats, &w);
  w.EndObject();
  return w.TakeString();
}

/// One NDJSON progress event: the round, the current threshold/bounds, and
/// the entries already proven final.
std::string ProgressEventJson(const core::NtaProgress& progress) {
  JsonWriter w;
  w.BeginObject();
  w.Key("event");
  w.String("progress");
  w.Key("round");
  w.Int(progress.round);
  w.Key("threshold");
  w.Double(progress.threshold);
  w.Key("kth_value");
  w.Double(progress.kth_value);
  w.Key("theta_guarantee");
  w.Double(progress.theta_guarantee);
  w.Key("confirmed");
  WriteEntries(progress.confirmed, &w);
  w.EndObject();
  return w.TakeString();
}

Result<QosClass> ParseQosName(const std::string& name) {
  if (name == "interactive") return QosClass::kInteractive;
  if (name == "batch") return QosClass::kBatch;
  if (name == "best_effort") return QosClass::kBestEffort;
  return Status::InvalidArgument("unknown QoS class: " + name);
}

/// The two request encodings (JSON body, URL parameters) funnel into one
/// field-by-field builder via this accessor pair.
struct FieldSource {
  /// Returns nullptr when the field is absent.
  std::function<const JsonValue*(const std::string&)> find;
};

Result<int64_t> ReadInt(const JsonValue& value, const std::string& name) {
  if (value.is_number()) {
    // Reject non-integral and out-of-int64-range numbers instead of
    // silently truncating/saturating wire input into a different query.
    const double num = value.number_value();
    if (!(num >= -9223372036854775808.0 && num < 9223372036854775808.0) ||
        num != std::floor(num)) {
      return Status::InvalidArgument("field '" + name +
                                     "' is not an integer");
    }
    return value.int_value();
  }
  if (value.is_string()) {
    // URL parameters arrive as strings; accept digits (with sign) only.
    // strtoll saturates on overflow with errno=ERANGE while still
    // consuming the token — that must 400, not become INT64_MAX.
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value.string_value().c_str(), &end,
                                          10);
    if (end != value.string_value().c_str() + value.string_value().size() ||
        value.string_value().empty() || errno == ERANGE) {
      return Status::InvalidArgument("field '" + name +
                                     "' is not an integer");
    }
    return static_cast<int64_t>(parsed);
  }
  return Status::InvalidArgument("field '" + name + "' is not an integer");
}

/// ReadInt plus a range check, for fields narrower than int64 — a value
/// that would wrap in the narrowing cast must 400, not silently become a
/// different query.
Result<int64_t> ReadIntInRange(const JsonValue& value,
                               const std::string& name, int64_t lo,
                               int64_t hi) {
  DE_ASSIGN_OR_RETURN(const int64_t parsed, ReadInt(value, name));
  if (parsed < lo || parsed > hi) {
    return Status::InvalidArgument("field '" + name + "' is out of range");
  }
  return parsed;
}

Result<double> ReadDouble(const JsonValue& value, const std::string& name) {
  double parsed;
  if (value.is_number()) {
    parsed = value.number_value();
  } else if (value.is_string()) {
    char* end = nullptr;
    parsed = std::strtod(value.string_value().c_str(), &end);
    if (value.string_value().empty() ||
        end != value.string_value().c_str() + value.string_value().size()) {
      return Status::InvalidArgument("field '" + name + "' is not a number");
    }
  } else {
    return Status::InvalidArgument("field '" + name + "' is not a number");
  }
  // No wire field has a meaningful non-finite value; "nan"/"1e999" via the
  // URL string path (or 1e999 overflowing strtod) must 400.
  if (!std::isfinite(parsed)) {
    return Status::InvalidArgument("field '" + name + "' must be finite");
  }
  return parsed;
}

/// Parses the neuron list: a JSON array of integers, or (URL form) a
/// comma-separated string like "0,2,4".
Result<std::vector<int64_t>> ReadNeurons(const JsonValue& value) {
  std::vector<int64_t> neurons;
  if (value.is_array()) {
    for (const JsonValue& item : value.array_items()) {
      if (!item.is_number()) {
        return Status::InvalidArgument("'neurons' must be integers");
      }
      // Same integrality/range discipline as the scalar fields: 1.9 must
      // 400, not silently query neuron 1.
      DE_ASSIGN_OR_RETURN(const int64_t id, ReadInt(item, "neurons"));
      neurons.push_back(id);
    }
    return neurons;
  }
  if (value.is_string()) {
    const std::string& text = value.string_value();
    size_t pos = 0;
    while (pos <= text.size()) {
      size_t comma = text.find(',', pos);
      if (comma == std::string::npos) comma = text.size();
      std::string token = text.substr(pos, comma - pos);
      if (token.empty()) {
        return Status::InvalidArgument("'neurons' has an empty element");
      }
      // Route each token through the one strict integer parser, so the
      // JSON-array and comma-list encodings cannot drift.
      DE_ASSIGN_OR_RETURN(
          const int64_t id,
          ReadInt(JsonValue::MakeString(std::move(token)), "neurons"));
      neurons.push_back(id);
      pos = comma + 1;
    }
    return neurons;
  }
  return Status::InvalidArgument("'neurons' must be an array");
}

/// Builds a TopKQuery from either encoding. `served_model` non-empty means
/// a mismatching "model" field is NotFound.
Result<service::TopKQuery> BuildQuery(const FieldSource& source,
                                      const std::string& served_model) {
  service::TopKQuery query;

  if (const JsonValue* model = source.find("model")) {
    if (!model->is_string()) {
      return Status::InvalidArgument("'model' must be a string");
    }
    if (!served_model.empty() && model->string_value() != served_model) {
      return Status::NotFound("model '" + model->string_value() +
                              "' is not served here (serving '" +
                              served_model + "')");
    }
  }

  if (const JsonValue* kind = source.find("kind")) {
    if (!kind->is_string()) {
      return Status::InvalidArgument("'kind' must be a string");
    }
    if (kind->string_value() == "highest") {
      query.kind = service::TopKQuery::Kind::kHighest;
    } else if (kind->string_value() == "most_similar") {
      query.kind = service::TopKQuery::Kind::kMostSimilar;
    } else {
      return Status::InvalidArgument("unknown kind: " + kind->string_value());
    }
  }

  const JsonValue* layer = source.find("layer");
  if (layer == nullptr) return Status::InvalidArgument("'layer' is required");
  DE_ASSIGN_OR_RETURN(
      const int64_t layer_id,
      ReadIntInRange(*layer, "layer", 0,
                     std::numeric_limits<int>::max()));
  query.group.layer = static_cast<int>(layer_id);

  const JsonValue* neurons = source.find("neurons");
  if (neurons == nullptr) {
    return Status::InvalidArgument("'neurons' is required");
  }
  DE_ASSIGN_OR_RETURN(query.group.neurons, ReadNeurons(*neurons));

  if (const JsonValue* k = source.find("k")) {
    DE_ASSIGN_OR_RETURN(
        const int64_t value,
        ReadIntInRange(*k, "k", 1, std::numeric_limits<int>::max()));
    query.k = static_cast<int>(value);
  }
  if (const JsonValue* target = source.find("target_id")) {
    DE_ASSIGN_OR_RETURN(
        const int64_t value,
        ReadIntInRange(*target, "target_id", 0,
                       std::numeric_limits<uint32_t>::max()));
    query.target_id = static_cast<uint32_t>(value);
  } else if (query.kind == service::TopKQuery::Kind::kMostSimilar) {
    return Status::InvalidArgument(
        "'target_id' is required for kind=most_similar");
  }
  if (const JsonValue* theta = source.find("theta")) {
    DE_ASSIGN_OR_RETURN(query.theta, ReadDouble(*theta, "theta"));
  }
  if (const JsonValue* session = source.find("session_id")) {
    DE_ASSIGN_OR_RETURN(const int64_t value, ReadInt(*session, "session_id"));
    if (value < 0) {
      return Status::InvalidArgument("'session_id' must be >= 0");
    }
    query.session_id = static_cast<uint64_t>(value);
  }
  if (const JsonValue* qos = source.find("qos")) {
    if (!qos->is_string()) {
      return Status::InvalidArgument("'qos' must be a string");
    }
    DE_ASSIGN_OR_RETURN(query.qos, ParseQosName(qos->string_value()));
  }
  if (const JsonValue* weight = source.find("weight")) {
    DE_ASSIGN_OR_RETURN(
        const int64_t value,
        ReadIntInRange(*weight, "weight", 1,
                       std::numeric_limits<int>::max()));
    query.weight = static_cast<int>(value);
  }
  if (const JsonValue* deadline = source.find("deadline_ms")) {
    if (!deadline->is_null()) {
      DE_ASSIGN_OR_RETURN(const double ms, ReadDouble(*deadline,
                                                      "deadline_ms"));
      // The bound (about 3 years) keeps ms*1e-3*1e9 far from the int64
      // nanosecond range SetDeadlineAfter casts into; NaN fails it too.
      if (!(ms >= 0.0 && ms <= 1e11)) {
        return Status::InvalidArgument(
            "'deadline_ms' must be in [0, 1e11]");
      }
      query.deadline_seconds = ms > 0.0 ? ms * 1e-3 : kAlreadyDueSeconds;
    }
  }
  return query;
}

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    service::QueryService* service, const QueryServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("query service is required");
  }
  std::unique_ptr<QueryServer> server(new QueryServer(service, options));
  auto started = HttpServer::Start(
      options.http, [raw = server.get()](const HttpRequest& request,
                                         HttpResponseWriter* writer) {
        raw->Handle(request, writer);
      });
  if (!started.ok()) return started.status();
  server->http_ = std::move(started.value());
  return server;
}

void QueryServer::Handle(const HttpRequest& request,
                         HttpResponseWriter* writer) {
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    writer->WriteResponse(200, "text/plain", "ok\n");
    return;
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleStats(writer);
    return;
  }
  if (request.path == "/v1/query") {
    if (request.method != "GET" && request.method != "POST") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleQuery(request, writer);
    return;
  }
  writer->WriteResponse(404, "application/json",
                        ErrorJson(Status::NotFound("no route for " +
                                                   request.path)) +
                            "\n");
}

void QueryServer::HandleQuery(const HttpRequest& request,
                              HttpResponseWriter* writer) {
  // Decode the query from the body (POST) or the URL parameters (GET).
  Result<service::TopKQuery> parsed = [&]() -> Result<service::TopKQuery> {
    if (request.method == "POST") {
      DE_ASSIGN_OR_RETURN(JsonValue body, ParseJson(request.body));
      if (!body.is_object()) {
        return Status::InvalidArgument("request body must be a JSON object");
      }
      FieldSource source;
      source.find = [&body](const std::string& name) {
        return body.Find(name);
      };
      return BuildQuery(source, options_.model_name);
    }
    // GET: every parameter is a string; BuildQuery's readers convert.
    std::map<std::string, JsonValue> values;
    for (const auto& [key, value] : request.query) {
      values.emplace(key, JsonValue::MakeString(value));
    }
    FieldSource source;
    source.find = [&values](const std::string& name) -> const JsonValue* {
      auto it = values.find(name);
      return it == values.end() ? nullptr : &it->second;
    };
    return BuildQuery(source, options_.model_name);
  }();
  if (!parsed.ok()) {
    WriteError(writer, parsed.status());
    return;
  }

  const auto stream_param = request.query.find("stream");
  if (stream_param != request.query.end() && stream_param->second == "1") {
    HandleStreamingQuery(std::move(parsed.value()), writer);
    return;
  }

  Result<core::TopKResult> result = service_->Execute(std::move(parsed.value()));
  if (!result.ok()) {
    WriteError(writer, result.status());
    return;
  }
  writer->WriteResponse(200, "application/json",
                        ResultJson(result.value()) + "\n");
}

void QueryServer::HandleStreamingQuery(service::TopKQuery query,
                                       HttpResponseWriter* writer) {
  /// Shared between this connection thread and the worker thread running
  /// the query: the sink below is invoked on the worker, while the context
  /// handle arrives from SubmitWithControl on this thread.
  struct StreamState {
    std::mutex mu;
    std::shared_ptr<core::QueryContext> ctx;
    bool disconnected = false;
  };
  auto state = std::make_shared<StreamState>();

  query.on_progress = [writer, state](const core::NtaProgress& progress) {
    if (!writer->WriteChunk(ProgressEventJson(progress) + "\n")) {
      // The client is gone: nobody will read the answer, so stop paying
      // inference for it. Cancel (rather than early-stop) so the abort is
      // visible as Cancelled in ServiceStats. Returning true keeps NTA in
      // its loop until the between-rounds CheckRunnable sees the flag.
      std::lock_guard<std::mutex> lock(state->mu);
      state->disconnected = true;
      if (state->ctx != nullptr) state->ctx->Cancel();
    }
    return true;
  };

  if (!writer->BeginChunked(200, "application/x-ndjson")) return;

  auto submitted = service_->SubmitWithControl(std::move(query));
  if (!submitted.ok()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("event");
    w.String("error");
    w.Key("code");
    w.String(StatusCodeToString(submitted.status().code()));
    w.Key("message");
    w.String(submitted.status().message());
    w.EndObject();
    writer->WriteChunk(w.TakeString() + "\n");
    writer->EndChunked();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->ctx = submitted->context;
    // The disconnect may have been observed before the handle existed.
    if (state->disconnected) state->ctx->Cancel();
  }

  Result<core::TopKResult> result = submitted->result.get();
  JsonWriter w;
  w.BeginObject();
  w.Key("event");
  if (result.ok()) {
    w.String("result");
    w.Key("entries");
    WriteEntries(result.value().entries, &w);
    w.Key("stats");
    WriteQueryStats(result.value().stats, &w);
  } else {
    w.String("error");
    w.Key("code");
    w.String(StatusCodeToString(result.status().code()));
    w.Key("message");
    w.String(result.status().message());
  }
  w.EndObject();
  writer->WriteChunk(w.TakeString() + "\n");
  writer->EndChunked();
  // The context owns the sink, the sink captures `state`, and `state`
  // holds the context back — break the cycle now that the query is over
  // (the worker finished with the sink before resolving the future).
  submitted->context->on_progress = nullptr;
}

void QueryServer::HandleStats(HttpResponseWriter* writer) {
  const service::ServiceStats stats = service_->Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("submitted");
  w.Int(stats.submitted);
  w.Key("rejected_queue_full");
  w.Int(stats.rejected_queue_full);
  w.Key("rejected_session_limit");
  w.Int(stats.rejected_session_limit);
  w.Key("completed");
  w.Int(stats.completed);
  w.Key("failed");
  w.Int(stats.failed);
  w.Key("cancelled");
  w.Int(stats.cancelled);
  w.Key("deadline_exceeded");
  w.Int(stats.deadline_exceeded);
  w.Key("rejected_past_deadline");
  w.Int(stats.rejected_past_deadline);
  w.Key("queue_depth");
  w.Uint(stats.queue_depth);
  w.Key("inflight");
  w.Uint(stats.inflight);
  w.Key("active_sessions");
  w.Uint(stats.active_sessions);
  w.Key("p50_latency_seconds");
  w.Double(stats.p50_latency_seconds);
  w.Key("p90_latency_seconds");
  w.Double(stats.p90_latency_seconds);
  w.Key("p99_latency_seconds");
  w.Double(stats.p99_latency_seconds);
  w.Key("qos_enabled");
  w.Bool(stats.qos_enabled);
  w.Key("num_workers");
  w.Int(stats.num_workers);
  w.Key("uptime_seconds");
  w.Double(stats.uptime_seconds);
  w.Key("worker_busy_seconds");
  w.Double(stats.worker_busy_seconds);
  w.Key("worker_utilization");
  w.Double(stats.worker_utilization);
  w.Key("batching_enabled");
  w.Bool(stats.batching_enabled);
  w.Key("batch_size");
  w.Int(stats.batch_size);
  w.Key("per_class");
  w.BeginArray();
  for (int c = 0; c < kNumQosClasses; ++c) {
    const service::QosClassStats& cls =
        stats.per_class[static_cast<size_t>(c)];
    w.BeginObject();
    w.Key("class");
    w.String(QosClassName(static_cast<QosClass>(c)));
    w.Key("submitted");
    w.Int(cls.submitted);
    w.Key("completed");
    w.Int(cls.completed);
    w.Key("failed");
    w.Int(cls.failed);
    w.Key("cancelled");
    w.Int(cls.cancelled);
    w.Key("deadline_exceeded");
    w.Int(cls.deadline_exceeded);
    w.Key("rejected_past_deadline");
    w.Int(cls.rejected_past_deadline);
    w.Key("p50_latency_seconds");
    w.Double(cls.p50_latency_seconds);
    w.Key("p90_latency_seconds");
    w.Double(cls.p90_latency_seconds);
    w.Key("p99_latency_seconds");
    w.Double(cls.p99_latency_seconds);
    w.Key("batch_fill");
    w.Double(cls.batch_fill);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

}  // namespace net
}  // namespace deepeverest
