#include "net/query_server.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/build_info.h"
#include "common/json.h"
#include "common/mutex.h"
#include "common/trace.h"
#include "core/query_spec_json.h"

namespace deepeverest {
namespace net {

namespace {

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 400;  // bad layer/neuron indices
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kFailedPrecondition: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kCancelled: return 499;
    default: return 500;
  }
}

std::string ErrorJson(const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("message");
  w.String(status.message());
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void WriteError(HttpResponseWriter* writer, const Status& status) {
  writer->WriteResponse(HttpStatusForCode(status.code()), "application/json",
                        ErrorJson(status) + "\n");
}

void WriteEntries(const std::vector<core::ResultEntry>& entries,
                  JsonWriter* w) {
  w->BeginArray();
  for (const core::ResultEntry& e : entries) {
    w->BeginObject();
    w->Key("input_id");
    w->Uint(e.input_id);
    w->Key("value");
    w->Double(e.value);
    w->EndObject();
  }
  w->EndArray();
}

void WriteQueryStats(const core::QueryStats& stats, JsonWriter* w) {
  w->BeginObject();
  w->Key("inputs_run");
  w->Int(stats.inputs_run);
  w->Key("batches_run");
  w->Double(stats.batches_run);
  w->Key("rounds");
  w->Int(stats.rounds);
  w->Key("iqa_hits");
  w->Int(stats.iqa_hits);
  w->Key("wall_seconds");
  w->Double(stats.wall_seconds);
  w->Key("simulated_gpu_seconds");
  w->Double(stats.simulated_gpu_seconds);
  w->Key("queue_seconds");
  w->Double(stats.queue_seconds);
  w->Key("terminated_early");
  w->Bool(stats.terminated_early);
  w->Key("dataset_version");
  w->Int(stats.dataset_version);
  w->EndObject();
}

/// Writes one ingest pipeline snapshot as the members of an already-open
/// object (shared by /v1/snapshot and the per-model sections of /v1/stats).
void WriteIngestStatsFields(const service::IngestStats& stats, JsonWriter* w) {
  w->Key("dataset_size");
  w->Uint(stats.dataset_size);
  w->Key("ingested_total");
  w->Int(stats.ingested_total);
  w->Key("rejected_total");
  w->Int(stats.rejected_total);
  w->Key("applies_total");
  w->Int(stats.applies_total);
  w->Key("min_watermark");
  w->Uint(stats.min_watermark);
  w->Key("watermarks");
  w->BeginArray();
  for (const service::IngestLayerWatermark& layer : stats.layers) {
    w->BeginObject();
    w->Key("layer");
    w->Int(layer.layer);
    w->Key("watermark");
    w->Uint(layer.watermark);
    w->EndObject();
  }
  w->EndArray();
  w->Key("snapshots_written");
  w->Int(stats.snapshots_written);
  w->Key("snapshot_bytes");
  w->Int(stats.snapshot_bytes);
  w->Key("snapshot_age_seconds");
  w->Double(stats.snapshot_age_seconds);
  w->Key("snapshot_dataset_size");
  w->Uint(stats.snapshot_dataset_size);
}

/// One NDJSON progress event: the round, the current threshold/bounds, and
/// the entries already proven final.
std::string ProgressEventJson(const core::NtaProgress& progress) {
  JsonWriter w;
  w.BeginObject();
  w.Key("event");
  w.String("progress");
  w.Key("round");
  w.Int(progress.round);
  w.Key("threshold");
  w.Double(progress.threshold);
  w.Key("kth_value");
  w.Double(progress.kth_value);
  w.Key("theta_guarantee");
  w.Double(progress.theta_guarantee);
  w.Key("confirmed");
  WriteEntries(progress.confirmed, &w);
  w.EndObject();
  return w.TakeString();
}

/// Writes one ServiceStats snapshot as the JSON object members of an
/// already-open object (shared by the per-model sections of /v1/stats).
void WriteServiceStatsFields(const service::ServiceStats& stats,
                             JsonWriter* w) {
  w->Key("submitted");
  w->Int(stats.submitted);
  w->Key("rejected_queue_full");
  w->Int(stats.rejected_queue_full);
  w->Key("rejected_session_limit");
  w->Int(stats.rejected_session_limit);
  w->Key("completed");
  w->Int(stats.completed);
  w->Key("failed");
  w->Int(stats.failed);
  w->Key("cancelled");
  w->Int(stats.cancelled);
  w->Key("deadline_exceeded");
  w->Int(stats.deadline_exceeded);
  w->Key("rejected_past_deadline");
  w->Int(stats.rejected_past_deadline);
  w->Key("queue_depth");
  w->Uint(stats.queue_depth);
  w->Key("inflight");
  w->Uint(stats.inflight);
  w->Key("parked");
  w->Uint(stats.parked);
  w->Key("parked_total");
  w->Int(stats.parked_total);
  w->Key("resumed_total");
  w->Int(stats.resumed_total);
  w->Key("preemptions");
  w->Int(stats.preemptions);
  w->Key("active_sessions");
  w->Uint(stats.active_sessions);
  w->Key("p50_latency_seconds");
  w->Double(stats.p50_latency_seconds);
  w->Key("p90_latency_seconds");
  w->Double(stats.p90_latency_seconds);
  w->Key("p99_latency_seconds");
  w->Double(stats.p99_latency_seconds);
  w->Key("qos_enabled");
  w->Bool(stats.qos_enabled);
  w->Key("num_workers");
  w->Int(stats.num_workers);
  w->Key("uptime_seconds");
  w->Double(stats.uptime_seconds);
  w->Key("worker_busy_seconds");
  w->Double(stats.worker_busy_seconds);
  w->Key("worker_utilization");
  w->Double(stats.worker_utilization);
  w->Key("batching_enabled");
  w->Bool(stats.batching_enabled);
  w->Key("batch_size");
  w->Int(stats.batch_size);
  w->Key("per_class");
  w->BeginArray();
  for (int c = 0; c < kNumQosClasses; ++c) {
    const service::QosClassStats& cls =
        stats.per_class[static_cast<size_t>(c)];
    w->BeginObject();
    w->Key("class");
    w->String(QosClassName(static_cast<QosClass>(c)));
    w->Key("submitted");
    w->Int(cls.submitted);
    w->Key("completed");
    w->Int(cls.completed);
    w->Key("failed");
    w->Int(cls.failed);
    w->Key("cancelled");
    w->Int(cls.cancelled);
    w->Key("deadline_exceeded");
    w->Int(cls.deadline_exceeded);
    w->Key("rejected_past_deadline");
    w->Int(cls.rejected_past_deadline);
    w->Key("p50_latency_seconds");
    w->Double(cls.p50_latency_seconds);
    w->Key("p90_latency_seconds");
    w->Double(cls.p90_latency_seconds);
    w->Key("p99_latency_seconds");
    w->Double(cls.p99_latency_seconds);
    w->Key("batch_fill");
    w->Double(cls.batch_fill);
    w->EndObject();
  }
  w->EndArray();
}

/// Writes the compiled-in build description as an object member sequence
/// of an already-open object (shared by /healthz and /v1/stats).
void WriteBuildInfoFields(JsonWriter* w) {
  const BuildInfo& build = GetBuildInfo();
  w->Key("build");
  w->BeginObject();
  w->Key("compiler");
  w->String(build.compiler);
  w->Key("cxx_flags");
  w->String(build.cxx_flags);
  w->Key("build_type");
  w->String(build.build_type);
  w->Key("git");
  w->String(build.git_describe);
  w->EndObject();
}

/// Writes one trace snapshot as a JSON object: flat span list with parent
/// indices (the tree is reconstructible), typed attrs inlined per span.
void WriteTraceJson(const Trace::Data& data, JsonWriter* w) {
  w->BeginObject();
  w->Key("trace_id");
  w->Uint(data.id);
  w->Key("dropped_spans");
  w->Int(data.dropped_spans);
  w->Key("complete");
  w->Bool(!data.has_open_spans);
  w->Key("spans");
  w->BeginArray();
  for (const TraceSpan& span : data.spans) {
    w->BeginObject();
    w->Key("name");
    w->String(span.name);
    w->Key("parent");
    w->Int(span.parent);
    w->Key("start_nanos");
    w->Int(span.start_nanos);
    w->Key("duration_nanos");
    w->Int(span.duration_nanos);
    if (!span.attrs.empty()) {
      w->Key("attrs");
      w->BeginObject();
      for (const TraceAttr& attr : span.attrs) {
        w->Key(attr.key);
        if (attr.is_int) {
          w->Int(attr.int_value);
        } else {
          w->Double(attr.double_value);
        }
      }
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

/// Collects the HTTP front-end's own counters into the scrape. No model
/// label: the listener serves every model.
void CollectHttpMetrics(const HttpServer* http,
                        service::MetricsEmitter* emitter) {
  const HttpServerStats stats = http->stats();
  emitter->Counter("deepeverest_http_connections_accepted_total",
                   "TCP connections accepted by the HTTP front-end.", {},
                   static_cast<double>(stats.connections_accepted));
  emitter->Counter("deepeverest_http_requests_total",
                   "HTTP responses written, including parse-error replies.",
                   {}, static_cast<double>(stats.requests_handled));
  emitter->Counter("deepeverest_http_responses_total",
                   "HTTP responses by status family.", {{"code", "2xx"}},
                   static_cast<double>(stats.responses_2xx));
  emitter->Counter("deepeverest_http_responses_total",
                   "HTTP responses by status family.", {{"code", "4xx"}},
                   static_cast<double>(stats.responses_4xx));
  emitter->Counter("deepeverest_http_responses_total",
                   "HTTP responses by status family.", {{"code", "5xx"}},
                   static_cast<double>(stats.responses_5xx));
}

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    service::EngineRegistry* registry, const QueryServerOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("engine registry is required");
  }
  if (registry->empty()) {
    return Status::InvalidArgument(
        "engine registry must have at least one model");
  }
  std::unique_ptr<QueryServer> server(new QueryServer(registry));
  auto started = HttpServer::Start(
      options.http, [raw = server.get()](const HttpRequest& request,
                                         HttpResponseWriter* writer) {
        raw->Handle(request, writer);
      });
  if (!started.ok()) return started.status();
  server->http_ = std::move(started.value());
  server->start_unix_seconds_ = std::chrono::duration_cast<std::chrono::seconds>(
                                    std::chrono::system_clock::now()
                                        .time_since_epoch())
                                    .count();
  server->collector_handles_.push_back(
      service::RegisterServiceMetrics(&server->metrics_, registry));
  server->collector_handles_.push_back(server->metrics_.AddCollector(
      [http = server->http_.get()](service::MetricsEmitter* emitter) {
        CollectHttpMetrics(http, emitter);
      }));
  server->collector_handles_.push_back(server->metrics_.AddCollector(
      [registry](service::MetricsEmitter* emitter) {
        // Ingest pipeline metrics, one label set per model with a sink.
        for (const std::string& name : registry->ModelNames()) {
          service::IngestSink* sink = registry->FindIngest(name);
          if (sink == nullptr) continue;
          const service::IngestStats stats = sink->Stats();
          const service::MetricsEmitter::Labels labels = {{"model", name}};
          emitter->Counter("deepeverest_ingested_inputs_total",
                           "Inputs durably accepted by POST /v1/ingest.",
                           labels, static_cast<double>(stats.ingested_total));
          emitter->Counter(
              "deepeverest_ingest_rejected_total",
              "Ingest batches rejected because the apply backlog was full.",
              labels, static_cast<double>(stats.rejected_total));
          emitter->Counter(
              "deepeverest_ingest_applies_total",
              "Incremental index apply passes completed.", labels,
              static_cast<double>(stats.applies_total));
          emitter->Gauge("deepeverest_ingest_dataset_size",
                         "Inputs visible to queries (dataset size).", labels,
                         static_cast<double>(stats.dataset_size));
          emitter->Gauge(
              "deepeverest_ingest_watermark",
              "Minimum index high-watermark across built layers; equals "
              "the dataset size when the index tier is caught up.",
              labels, static_cast<double>(stats.min_watermark));
          emitter->Counter("deepeverest_snapshots_written_total",
                           "Snapshots committed since process start.", labels,
                           static_cast<double>(stats.snapshots_written));
          emitter->Gauge("deepeverest_snapshot_bytes",
                         "On-disk size of the last committed snapshot.",
                         labels, static_cast<double>(stats.snapshot_bytes));
          emitter->Gauge(
              "deepeverest_snapshot_age_seconds",
              "Seconds since the last committed snapshot (-1 = none).",
              labels, stats.snapshot_age_seconds);
        }
      }));
  server->collector_handles_.push_back(server->metrics_.AddCollector(
      [raw = server.get()](service::MetricsEmitter* emitter) {
        const BuildInfo& build = GetBuildInfo();
        emitter->Gauge("deepeverest_build_info",
                       "Build metadata; the value is always 1.",
                       {{"compiler", build.compiler},
                        {"build_type", build.build_type},
                        {"git", build.git_describe}},
                       1.0);
        emitter->Gauge("deepeverest_server_uptime_seconds",
                       "Seconds since this HTTP server started.", {},
                       raw->uptime_.ElapsedSeconds());
        emitter->Gauge("deepeverest_server_start_time_seconds",
                       "Unix time the HTTP server started.", {},
                       static_cast<double>(raw->start_unix_seconds_));
      }));
  return server;
}

void QueryServer::Shutdown() {
  // Stop traffic first, then drop the collectors (they capture this server
  // and the registry; nothing scrapes after the listener is down).
  http_->Shutdown();
  for (const int64_t handle : collector_handles_) {
    metrics_.RemoveCollector(handle);
  }
  collector_handles_.clear();
}

void QueryServer::Handle(const HttpRequest& request,
                         HttpResponseWriter* writer) {
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleHealthz(writer);
    return;
  }
  if (request.path == "/v1/metrics") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleMetrics(writer);
    return;
  }
  if (request.path.rfind("/v1/query/", 0) == 0) {
    if (request.method != "DELETE") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleCancel(request.path, writer);
    return;
  }
  if (request.path.rfind("/v1/trace/", 0) == 0) {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleTrace(request.path, writer);
    return;
  }
  if (request.path == "/v1/models") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleModels(writer);
    return;
  }
  if (request.path == "/v1/ingest") {
    if (request.method != "POST") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleIngest(request, writer);
    return;
  }
  if (request.path == "/v1/snapshot") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleSnapshot(request, writer, /*save=*/false);
    return;
  }
  if (request.path == "/v1/snapshot/save") {
    if (request.method != "POST") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleSnapshot(request, writer, /*save=*/true);
    return;
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleStats(writer);
    return;
  }
  if (request.path == "/v1/query" || request.path == "/v1/ql") {
    if (request.method != "GET" && request.method != "POST") {
      writer->WriteResponse(405, "text/plain", "method not allowed\n");
      return;
    }
    HandleQuery(request, writer, /*require_ql=*/request.path == "/v1/ql");
    return;
  }
  writer->WriteResponse(404, "application/json",
                        ErrorJson(Status::NotFound("no route for " +
                                                   request.path)) +
                            "\n");
}

void QueryServer::HandleQuery(const HttpRequest& request,
                              HttpResponseWriter* writer, bool require_ql) {
  // Both encodings (POST JSON body, GET URL parameters) expose one field
  // source; the shared wire codec does the rest.
  JsonValue body;
  std::map<std::string, JsonValue> params;
  core::JsonFieldFinder find;
  if (request.method == "POST") {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      WriteError(writer, parsed.status());
      return;
    }
    if (!parsed->is_object()) {
      WriteError(writer, Status::InvalidArgument(
                             "request body must be a JSON object"));
      return;
    }
    body = std::move(parsed.value());
    find = [&body](const std::string& name) { return body.Find(name); };
  } else {
    // GET: every parameter is a string; the codec's readers convert.
    for (const auto& [key, value] : request.query) {
      params.emplace(key, JsonValue::MakeString(value));
    }
    find = [&params](const std::string& name) -> const JsonValue* {
      auto it = params.find(name);
      return it == params.end() ? nullptr : &it->second;
    };
  }

  // Routing: the model field picks the service; absent routes to the
  // registry default. This is routing, not matching — the same server
  // answers for every registered model.
  service::QueryService* service = registry_->DefaultService();
  if (const JsonValue* model = find("model")) {
    if (!model->is_string()) {
      WriteError(writer, Status::InvalidArgument("'model' must be a string"));
      return;
    }
    service = registry_->Find(model->string_value());
    if (service == nullptr) {
      std::string served;
      for (const std::string& name : registry_->ModelNames()) {
        if (!served.empty()) served += ", ";
        served += name;
      }
      WriteError(writer,
                 Status::NotFound("model '" + model->string_value() +
                                  "' is not served here (serving: " + served +
                                  ")"));
      return;
    }
  }

  if (require_ql && find("ql") == nullptr) {
    WriteError(writer,
               Status::InvalidArgument("'ql' is required on /v1/ql"));
    return;
  }

  auto spec = core::QuerySpecFromFields(find);
  if (!spec.ok()) {
    WriteError(writer, spec.status());
    return;
  }

  // Streaming is requested either way the other transport fields travel:
  // as the `stream=1` URL parameter or as a `stream` member of a POST
  // body (true, 1, or "1") — a body flag must not be silently ignored
  // while its sibling `model` routes.
  bool streaming = false;
  const auto stream_param = request.query.find("stream");
  if (stream_param != request.query.end() && stream_param->second == "1") {
    streaming = true;
  }
  if (const JsonValue* stream = find("stream")) {
    streaming = streaming || (stream->is_bool() && stream->bool_value()) ||
                (stream->is_number() && stream->number_value() == 1.0) ||
                (stream->is_string() && stream->string_value() == "1");
  }
  // `trace=1` travels the same two ways `stream` does. The query is traced
  // regardless; the flag only controls whether the span tree rides along in
  // the response (it is always retrievable at /v1/trace/<id> afterwards).
  bool want_trace = false;
  const auto trace_param = request.query.find("trace");
  if (trace_param != request.query.end() && trace_param->second == "1") {
    want_trace = true;
  }
  if (const JsonValue* trace = find("trace")) {
    want_trace = want_trace || (trace->is_bool() && trace->bool_value()) ||
                 (trace->is_number() && trace->number_value() == 1.0) ||
                 (trace->is_string() && trace->string_value() == "1");
  }
  if (streaming) {
    HandleStreamingQuery(service, std::move(spec.value()), writer, want_trace);
    return;
  }

  auto submitted = service->SubmitWithControl(std::move(spec.value()));
  if (!submitted.ok()) {
    WriteError(writer, submitted.status());
    return;
  }
  Trace* const trace = submitted->context->trace.get();
  const uint64_t query_id = trace != nullptr ? trace->id() : 0;
  RegisterLive(query_id, submitted->context, service);
  Result<core::TopKResult> result = submitted->result.get();
  UnregisterLive(query_id);
  if (!result.ok()) {
    if (trace != nullptr) trace->Finish();
    WriteError(writer, result.status());
    return;
  }
  // Serialization runs inside its own span so the trace accounts for the
  // response-building tail, then the trace is finished (closing the root)
  // before its snapshot is appended — the span tree in the reply is final.
  JsonWriter w;
  w.BeginObject();
  w.Key("query_id");
  w.Uint(query_id);
  {
    SpanScope serialize(trace, "serialize");
    w.Key("entries");
    WriteEntries(result.value().entries, &w);
    w.Key("stats");
    WriteQueryStats(result.value().stats, &w);
  }
  if (trace != nullptr) trace->Finish();
  if (want_trace && trace != nullptr) {
    w.Key("trace");
    WriteTraceJson(trace->Snapshot(), &w);
  }
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleStreamingQuery(service::QueryService* service,
                                       core::QuerySpec spec,
                                       HttpResponseWriter* writer,
                                       bool want_trace) {
  /// Shared between this connection thread and the worker thread running
  /// the query: the sink below is invoked on the worker, while the context
  /// handle arrives from SubmitWithControl on this thread.
  struct StreamState {
    common::Mutex mu;
    std::shared_ptr<core::QueryContext> ctx GUARDED_BY(mu);
    bool disconnected GUARDED_BY(mu) = false;
  };
  auto state = std::make_shared<StreamState>();

  spec.on_progress = [writer, state](const core::NtaProgress& progress) {
    if (!writer->WriteChunk(ProgressEventJson(progress) + "\n")) {
      // The client is gone: nobody will read the answer, so stop paying
      // inference for it. Cancel (rather than early-stop) so the abort is
      // visible as Cancelled in ServiceStats. Returning true keeps NTA in
      // its loop until the between-rounds CheckRunnable sees the flag.
      common::MutexLock lock(&state->mu);
      state->disconnected = true;
      if (state->ctx != nullptr) state->ctx->Cancel();
    }
    return true;
  };

  if (!writer->BeginChunked(200, "application/x-ndjson")) return;

  auto submitted = service->SubmitWithControl(std::move(spec));
  if (!submitted.ok()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("event");
    w.String("error");
    w.Key("code");
    w.String(StatusCodeToString(submitted.status().code()));
    w.Key("message");
    w.String(submitted.status().message());
    w.EndObject();
    writer->WriteChunk(w.TakeString() + "\n");
    writer->EndChunked();
    return;
  }
  {
    common::MutexLock lock(&state->mu);
    state->ctx = submitted->context;
    // The disconnect may have been observed before the handle existed.
    if (state->disconnected) state->ctx->Cancel();
  }
  const uint64_t query_id = submitted->context->trace != nullptr
                                ? submitted->context->trace->id()
                                : 0;
  RegisterLive(query_id, submitted->context, service);
  // First event: the query's id, so the client can DELETE /v1/query/<id>
  // (or fetch /v1/trace/<id>) while the stream is still running.
  {
    JsonWriter aw;
    aw.BeginObject();
    aw.Key("event");
    aw.String("accepted");
    aw.Key("query_id");
    aw.Uint(query_id);
    aw.EndObject();
    writer->WriteChunk(aw.TakeString() + "\n");
  }

  Result<core::TopKResult> result = submitted->result.get();
  UnregisterLive(query_id);
  Trace* const trace = submitted->context->trace.get();
  JsonWriter w;
  w.BeginObject();
  w.Key("event");
  {
    SpanScope serialize(trace, "serialize");
    if (result.ok()) {
      w.String("result");
      w.Key("entries");
      WriteEntries(result.value().entries, &w);
      w.Key("stats");
      WriteQueryStats(result.value().stats, &w);
    } else {
      w.String("error");
      w.Key("code");
      w.String(StatusCodeToString(result.status().code()));
      w.Key("message");
      w.String(result.status().message());
    }
  }
  w.EndObject();
  if (trace != nullptr) trace->Finish();
  writer->WriteChunk(w.TakeString() + "\n");
  if (want_trace && trace != nullptr) {
    JsonWriter tw;
    tw.BeginObject();
    tw.Key("event");
    tw.String("trace");
    tw.Key("trace");
    WriteTraceJson(trace->Snapshot(), &tw);
    tw.EndObject();
    writer->WriteChunk(tw.TakeString() + "\n");
  }
  writer->EndChunked();
  // The context owns the sink, the sink captures `state`, and `state`
  // holds the context back — break the cycle now that the query is over
  // (the worker finished with the sink before resolving the future).
  submitted->context->on_progress = nullptr;
}

void QueryServer::HandleHealthz(HttpResponseWriter* writer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String("ok");
  w.Key("uptime_seconds");
  w.Double(uptime_.ElapsedSeconds());
  w.Key("start_unix_seconds");
  w.Int(start_unix_seconds_);
  WriteBuildInfoFields(&w);
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleMetrics(HttpResponseWriter* writer) {
  writer->WriteResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                        metrics_.RenderPrometheusText());
}

void QueryServer::HandleTrace(const std::string& path,
                              HttpResponseWriter* writer) {
  const std::string id_text = path.substr(std::string("/v1/trace/").size());
  char* end = nullptr;
  const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
  if (id_text.empty() || end == nullptr || *end != '\0') {
    WriteError(writer,
               Status::InvalidArgument("trace id must be a decimal integer"));
    return;
  }
  // Traces live in the per-model services' rings; the id is process-wide
  // unique, so the first hit is the only one.
  std::shared_ptr<Trace> trace;
  for (const std::string& name : registry_->ModelNames()) {
    service::QueryService* service = registry_->Find(name);
    if (service == nullptr) continue;
    trace = service->FindTrace(static_cast<uint64_t>(id));
    if (trace != nullptr) break;
  }
  if (trace == nullptr) {
    WriteError(writer, Status::NotFound("trace " + id_text +
                                        " is not in the ring (it may have "
                                        "been evicted by newer queries)"));
    return;
  }
  JsonWriter w;
  WriteTraceJson(trace->Snapshot(), &w);
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::RegisterLive(uint64_t query_id,
                               const std::shared_ptr<core::QueryContext>& ctx,
                               service::QueryService* service) {
  common::MutexLock lock(&live_mu_);
  live_[query_id] = LiveQuery{ctx, service};
}

void QueryServer::UnregisterLive(uint64_t query_id) {
  common::MutexLock lock(&live_mu_);
  live_.erase(query_id);
}

void QueryServer::HandleCancel(const std::string& path,
                               HttpResponseWriter* writer) {
  const std::string id_text = path.substr(std::string("/v1/query/").size());
  char* end = nullptr;
  const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
  if (id_text.empty() || end == nullptr || *end != '\0') {
    WriteError(writer,
               Status::InvalidArgument("query id must be a decimal integer"));
    return;
  }
  std::shared_ptr<core::QueryContext> ctx;
  {
    common::MutexLock lock(&live_mu_);
    auto it = live_.find(static_cast<uint64_t>(id));
    if (it != live_.end()) ctx = it->second.ctx.lock();
  }
  if (ctx == nullptr ||
      ctx->lifecycle() == core::QueryContext::Lifecycle::kFinished) {
    WriteError(writer,
               Status::NotFound("query " + id_text +
                                " is not live (it may have already "
                                "finished)"));
    return;
  }
  // Cooperative: a queued query fails at dispatch, a running one aborts
  // between NTA rounds, a parked one fails at resume — all surface as
  // Cancelled to the submitting request.
  ctx->Cancel();
  JsonWriter w;
  w.BeginObject();
  w.Key("query_id");
  w.Uint(static_cast<uint64_t>(id));
  w.Key("cancel_requested");
  w.Bool(true);
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleIngest(const HttpRequest& request,
                               HttpResponseWriter* writer) {
  auto parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    WriteError(writer, parsed.status());
    return;
  }
  if (!parsed->is_object()) {
    WriteError(writer,
               Status::InvalidArgument("request body must be a JSON object"));
    return;
  }
  // Routing mirrors /v1/query: `model` picks the pipeline, absent routes to
  // the default model. A served model without an attached ingest pipeline is
  // a 404 — it answers queries only.
  std::string model = registry_->default_model();
  if (const JsonValue* field = parsed->Find("model")) {
    if (!field->is_string()) {
      WriteError(writer, Status::InvalidArgument("'model' must be a string"));
      return;
    }
    model = field->string_value();
  }
  service::IngestSink* sink = registry_->FindIngest(model);
  if (sink == nullptr) {
    WriteError(writer,
               Status::NotFound("model '" + model +
                                "' does not accept ingest here (no ingest "
                                "pipeline attached)"));
    return;
  }

  const JsonValue* inputs_field = parsed->Find("inputs");
  if (inputs_field == nullptr || !inputs_field->is_array()) {
    WriteError(writer, Status::InvalidArgument(
                           "'inputs' must be an array of input objects"));
    return;
  }
  std::vector<service::IngestInput> inputs;
  inputs.reserve(inputs_field->array_items().size());
  for (const JsonValue& item : inputs_field->array_items()) {
    if (!item.is_object()) {
      WriteError(writer, Status::InvalidArgument(
                             "each input must be an object with 'values'"));
      return;
    }
    const JsonValue* values = item.Find("values");
    if (values == nullptr || !values->is_array()) {
      WriteError(writer, Status::InvalidArgument(
                             "each input needs a 'values' number array"));
      return;
    }
    service::IngestInput input;
    input.values.reserve(values->array_items().size());
    for (const JsonValue& v : values->array_items()) {
      if (!v.is_number()) {
        WriteError(writer,
                   Status::InvalidArgument("'values' must hold numbers"));
        return;
      }
      input.values.push_back(static_cast<float>(v.number_value()));
    }
    if (const JsonValue* label = item.Find("label")) {
      if (!label->is_number()) {
        WriteError(writer,
                   Status::InvalidArgument("'label' must be a number"));
        return;
      }
      input.label = static_cast<int>(label->number_value());
    }
    inputs.push_back(std::move(input));
  }

  auto ack = sink->Ingest(inputs);
  if (!ack.ok()) {
    WriteError(writer, ack.status());
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("model");
  w.String(model);
  w.Key("first_id");
  w.Uint(ack->first_id);
  w.Key("count");
  w.Uint(ack->count);
  w.Key("dataset_size");
  w.Uint(ack->dataset_size);
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleSnapshot(const HttpRequest& request,
                                 HttpResponseWriter* writer, bool save) {
  std::string model = registry_->default_model();
  const auto param = request.query.find("model");
  if (param != request.query.end()) {
    model = param->second;
  } else if (save && !request.body.empty()) {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      WriteError(writer, parsed.status());
      return;
    }
    if (const JsonValue* field =
            parsed->is_object() ? parsed->Find("model") : nullptr) {
      if (!field->is_string()) {
        WriteError(writer,
                   Status::InvalidArgument("'model' must be a string"));
        return;
      }
      model = field->string_value();
    }
  }
  service::IngestSink* sink = registry_->FindIngest(model);
  if (sink == nullptr) {
    WriteError(writer,
               Status::NotFound("model '" + model +
                                "' has no ingest/snapshot pipeline here"));
    return;
  }
  if (save) {
    const Status saved = sink->SaveSnapshot();
    if (!saved.ok()) {
      WriteError(writer, saved);
      return;
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("model");
  w.String(model);
  if (save) {
    w.Key("saved");
    w.Bool(true);
  }
  WriteIngestStatsFields(sink->Stats(), &w);
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleModels(HttpResponseWriter* writer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("models");
  w.BeginArray();
  for (const std::string& name : registry_->ModelNames()) w.String(name);
  w.EndArray();
  w.Key("default");
  w.String(registry_->default_model());
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

void QueryServer::HandleStats(HttpResponseWriter* writer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("server");
  w.BeginObject();
  w.Key("uptime_seconds");
  w.Double(uptime_.ElapsedSeconds());
  w.Key("start_unix_seconds");
  w.Int(start_unix_seconds_);
  WriteBuildInfoFields(&w);
  w.EndObject();
  w.Key("default_model");
  w.String(registry_->default_model());
  w.Key("models");
  w.BeginArray();
  for (const std::string& name : registry_->ModelNames()) {
    service::QueryService* service = registry_->Find(name);
    if (service == nullptr) continue;  // raced registration; never removed
    w.BeginObject();
    w.Key("model");
    w.String(name);
    WriteServiceStatsFields(service->Snapshot(), &w);
    // Live scheduling states of this model's in-progress HTTP queries
    // (lock-free lifecycle snapshots; may trail the authoritative state by
    // one transition). Expired entries are pruned as we pass.
    size_t queued = 0;
    size_t running = 0;
    size_t parked = 0;
    {
      common::MutexLock lock(&live_mu_);
      for (auto it = live_.begin(); it != live_.end();) {
        const std::shared_ptr<core::QueryContext> ctx = it->second.ctx.lock();
        if (ctx == nullptr) {
          it = live_.erase(it);
          continue;
        }
        if (it->second.service == service) {
          switch (ctx->lifecycle()) {
            case core::QueryContext::Lifecycle::kQueued: ++queued; break;
            case core::QueryContext::Lifecycle::kRunning: ++running; break;
            case core::QueryContext::Lifecycle::kParked: ++parked; break;
            case core::QueryContext::Lifecycle::kFinished: break;
          }
        }
        ++it;
      }
    }
    w.Key("states");
    w.BeginObject();
    w.Key("queued");
    w.Uint(queued);
    w.Key("running");
    w.Uint(running);
    w.Key("parked");
    w.Uint(parked);
    w.EndObject();
    // Ingest pipeline state, for models that accept ingest.
    if (service::IngestSink* sink = registry_->FindIngest(name)) {
      w.Key("ingest");
      w.BeginObject();
      WriteIngestStatsFields(sink->Stats(), &w);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  writer->WriteResponse(200, "application/json", w.TakeString() + "\n");
}

}  // namespace net
}  // namespace deepeverest
