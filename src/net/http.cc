#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace deepeverest {
namespace net {

namespace {

const std::string kEmpty;

/// Trims optional whitespace (OWS: spaces and tabs) from both ends.
std::string TrimOws(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string AsciiLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

const std::string& HttpRequest::HeaderOrEmpty(
    const std::string& lower_name) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

const std::string& HttpResponse::HeaderOrEmpty(
    const std::string& lower_name) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";  // nginx's code; apt here too
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string FormatResponseHead(
    int status,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpStatusText(status) + "\r\n";
  for (const auto& [name, value] : headers) {
    head += name;
    head += ": ";
    head += value;
    head += "\r\n";
  }
  head += "\r\n";
  return head;
}

Result<std::string> PercentDecode(const std::string& text,
                                  bool plus_is_space) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+' && plus_is_space) {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) {
        return Status::InvalidArgument("truncated percent escape");
      }
      const int hi = HexDigit(text[i + 1]);
      const int lo = HexDigit(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("invalid percent escape");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PercentEncode(const std::string& text) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

Result<std::map<std::string, std::string>> ParseQueryString(
    const std::string& query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      std::string key_raw =
          eq == std::string::npos ? pair : pair.substr(0, eq);
      std::string value_raw =
          eq == std::string::npos ? std::string() : pair.substr(eq + 1);
      DE_ASSIGN_OR_RETURN(std::string key,
                          PercentDecode(key_raw, /*plus_is_space=*/true));
      DE_ASSIGN_OR_RETURN(std::string value,
                          PercentDecode(value_raw, /*plus_is_space=*/true));
      params[std::move(key)] = std::move(value);
    }
    pos = amp + 1;
  }
  return params;
}

// ---------------------------------------------------------------------------
// HttpRequestParser
// ---------------------------------------------------------------------------

Status HttpRequestParser::Feed(const char* data, size_t size) {
  if (state_ == State::kError) return error_;
  buffer_.append(data, size);

  if (state_ == State::kHead) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) {
        error_ = Status::ResourceExhausted("request head exceeds limit");
        state_ = State::kError;
        return error_;
      }
      return Status::OK();  // need more bytes
    }
    if (head_end + 4 > kMaxHeaderBytes) {
      error_ = Status::ResourceExhausted("request head exceeds limit");
      state_ = State::kError;
      return error_;
    }
    Status parsed = ParseHead();
    if (!parsed.ok()) {
      error_ = parsed;
      state_ = State::kError;
      return error_;
    }
  }

  if (state_ == State::kBody) {
    if (body_remaining_ > 0) {
      const size_t take = std::min(body_remaining_, buffer_.size());
      request_.body.append(buffer_, 0, take);
      buffer_.erase(0, take);
      body_remaining_ -= take;
    }
    if (body_remaining_ == 0) state_ = State::kComplete;
  }
  return Status::OK();
}

Status HttpRequestParser::ParseHead() {
  const size_t head_end = buffer_.find("\r\n\r\n");
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  // Request line: METHOD SP request-target SP HTTP-version.
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = request_line.substr(sp2 + 1);
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return Status::InvalidArgument("malformed request target");
  }

  // Split the target into path + query parameters.
  const size_t question = request_.target.find('?');
  const std::string raw_path = question == std::string::npos
                                   ? request_.target
                                   : request_.target.substr(0, question);
  DE_ASSIGN_OR_RETURN(request_.path,
                      PercentDecode(raw_path, /*plus_is_space=*/false));
  if (question != std::string::npos) {
    DE_ASSIGN_OR_RETURN(request_.query,
                        ParseQueryString(request_.target.substr(question + 1)));
  }

  // Header fields.
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("malformed header field");
    }
    const std::string name = line.substr(0, colon);
    // RFC 7230: no whitespace between field name and ':'.
    if (name.back() == ' ' || name.back() == '\t') {
      return Status::InvalidArgument("whitespace before header colon");
    }
    request_.headers[AsciiLower(name)] = TrimOws(line.substr(colon + 1));
  }

  if (request_.headers.count("transfer-encoding") > 0) {
    return Status::InvalidArgument("chunked request bodies unsupported");
  }

  body_remaining_ = 0;
  const auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    const std::string& value = it->second;
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    char* end = nullptr;
    const unsigned long long length = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || length > kMaxBodyBytes) {
      body_too_large_ = true;
      return Status::ResourceExhausted("request body exceeds limit");
    }
    body_remaining_ = static_cast<size_t>(length);
  }
  state_ = State::kBody;
  return Status::OK();
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest();
  body_remaining_ = 0;
  state_ = State::kHead;
  return out;
}

// ---------------------------------------------------------------------------
// ChunkedDecoder
// ---------------------------------------------------------------------------

Status ChunkedDecoder::Feed(const char* data, size_t size) {
  if (state_ == State::kError) {
    return Status::InvalidArgument("chunked decoder poisoned");
  }
  pending_.append(data, size);
  for (;;) {
    switch (state_) {
      case State::kSizeLine: {
        const size_t eol = pending_.find("\r\n");
        if (eol == std::string::npos) {
          if (pending_.size() > 1024) {
            state_ = State::kError;
            return Status::InvalidArgument("oversized chunk size line");
          }
          return Status::OK();
        }
        // Chunk extensions (";...") are tolerated and ignored.
        std::string size_token = pending_.substr(0, eol);
        const size_t semi = size_token.find(';');
        if (semi != std::string::npos) size_token.resize(semi);
        size_token = TrimOws(size_token);
        if (size_token.empty() ||
            size_token.find_first_not_of("0123456789abcdefABCDEF") !=
                std::string::npos) {
          state_ = State::kError;
          return Status::InvalidArgument("malformed chunk size");
        }
        char* end = nullptr;
        const unsigned long long chunk =
            std::strtoull(size_token.c_str(), &end, 16);
        if (end != size_token.c_str() + size_token.size() ||
            chunk > kMaxBodyBytes) {
          state_ = State::kError;
          return Status::InvalidArgument("malformed chunk size");
        }
        pending_.erase(0, eol + 2);
        chunk_remaining_ = static_cast<size_t>(chunk);
        state_ = chunk == 0 ? State::kTrailer : State::kData;
        break;
      }
      case State::kData: {
        const size_t take = std::min(chunk_remaining_, pending_.size());
        output_.append(pending_, 0, take);
        pending_.erase(0, take);
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) return Status::OK();
        state_ = State::kDataCrlf;
        break;
      }
      case State::kDataCrlf: {
        if (pending_.size() < 2) return Status::OK();
        if (pending_.compare(0, 2, "\r\n") != 0) {
          state_ = State::kError;
          return Status::InvalidArgument("missing CRLF after chunk data");
        }
        pending_.erase(0, 2);
        state_ = State::kSizeLine;
        break;
      }
      case State::kTrailer: {
        // No trailer fields are produced by our server; accept an optional
        // trailer section terminated by CRLF, bounded like the size line so
        // an endless trailer cannot grow pending_ without limit.
        const size_t eol = pending_.find("\r\n");
        if (eol == std::string::npos) {
          if (pending_.size() > 8 * 1024) {
            state_ = State::kError;
            return Status::InvalidArgument("oversized chunk trailer");
          }
          return Status::OK();
        }
        if (eol == 0) {
          pending_.erase(0, 2);
          state_ = State::kComplete;
          return Status::OK();
        }
        pending_.erase(0, eol + 2);  // drop one trailer field, stay here
        break;
      }
      case State::kComplete:
        return Status::OK();
      case State::kError:
        return Status::InvalidArgument("chunked decoder poisoned");
    }
  }
}

std::string ChunkedDecoder::TakeOutput() {
  std::string out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace net
}  // namespace deepeverest
