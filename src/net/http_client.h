#ifndef DEEPEVEREST_NET_HTTP_CLIENT_H_
#define DEEPEVEREST_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "net/http.h"

namespace deepeverest {
namespace net {

/// \brief A small blocking HTTP/1.1 client over one keep-alive connection.
///
/// Exactly what the tests, the e2e CI driver, and the network bench need:
/// sequential request/response on a single connection (open several clients
/// for concurrency), with incremental consumption of chunked NDJSON streams.
/// Not a general-purpose client — no TLS, no redirects, no proxies.
class HttpClient {
 public:
  /// One decoded NDJSON line from a streaming response. Return false to
  /// abandon the stream: the client closes the connection immediately,
  /// which the server observes as a client disconnect (this is how the
  /// tests exercise disconnect-triggered query cancellation).
  using LineCallback = std::function<bool(const std::string& line)>;

  /// Connects to `host:port` (host is a dotted-quad IPv4 literal; the
  /// serving story is loopback). `timeout_seconds` is the *idle* read
  /// timeout while awaiting response bytes — it resets on every received
  /// byte, so a long stream that keeps making progress never trips it.
  static Result<HttpClient> Connect(const std::string& host, uint16_t port,
                                    double timeout_seconds = 10.0);

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  /// Sends one request and reads the complete response (chunked bodies are
  /// de-chunked into `HttpResponse::body`). `body` is sent with
  /// Content-Length framing when non-empty or when the method is POST.
  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               const std::string& content_type =
                                   "application/json");

  Result<HttpResponse> Get(const std::string& target) {
    return Request("GET", target);
  }
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body) {
    return Request("POST", target, body);
  }

  /// Sends a GET and delivers the chunked response line by line as data
  /// arrives (lines are '\n'-terminated; the terminator is stripped). The
  /// returned response carries status and headers with an empty body; any
  /// final partial line is delivered before returning. When the callback
  /// returns false the connection is torn down mid-stream and the call
  /// returns with what was read so far.
  Result<HttpResponse> GetStream(const std::string& target,
                                 const LineCallback& on_line);

  /// GetStream with a POST body — how a client drives a streamed
  /// `POST /v1/ql?stream=1` query.
  Result<HttpResponse> PostStream(const std::string& target,
                                  const std::string& body,
                                  const LineCallback& on_line);

  /// True while the connection is usable for another request.
  bool connected() const { return fd_ >= 0; }

  /// Closes the connection (abandoning any in-flight stream).
  void Close();

 private:
  HttpClient(int fd, double timeout_seconds)
      : fd_(fd), timeout_seconds_(timeout_seconds) {}

  Status SendAll(const std::string& data);

  /// Serialises and sends one request head + body (the single place the
  /// request framing lives — Request, GetStream, and PostStream all go
  /// through it).
  Status SendRequest(const std::string& method, const std::string& target,
                     const std::string& body,
                     const std::string& content_type);
  /// Reads the response head + body. When `on_line` is set, chunked payload
  /// is surfaced through it incrementally instead of being buffered.
  Result<HttpResponse> ReadResponse(const LineCallback* on_line);

  int fd_ = -1;
  double timeout_seconds_ = 10.0;
  std::string read_buffer_;  // bytes past the previous response
};

}  // namespace net
}  // namespace deepeverest

#endif  // DEEPEVEREST_NET_HTTP_CLIENT_H_
