#ifndef DEEPEVEREST_KERNELS_KERNELS_H_
#define DEEPEVEREST_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace deepeverest {
namespace kernels {

/// \brief The hot-loop kernel layer.
///
/// Everything on a per-candidate path — batched distance aggregation over
/// row blocks, bulk bit-unpacking of NPI partition ids, 8-bit dequantisation
/// — runs through one KernelTable of plain function pointers. Two tables
/// exist: a portable scalar one and an AVX2 one (compiled in its own
/// translation unit with -mavx2 -ffp-contract=off). Which table serves the
/// process is decided exactly once, on first use, from cpuid plus the
/// DEEPEVEREST_KERNELS environment override; after that the per-block call
/// is one indirect jump, hoisted out of the per-candidate loop entirely.
///
/// Bit-parity contract: for identical inputs, every entry of the AVX2 table
/// returns results bit-identical to the scalar table. The AVX2 aggregation
/// kernels keep one *row per SIMD lane* and walk columns sequentially, so
/// each row's floating-point op order matches the scalar loop exactly; FMA
/// contraction is disabled in both kernel TUs. The seeded parity suite
/// (tests/kernels/) pins this, which is what lets the §4.6 fresh-scan
/// reference stay bit-equal to the service path under either dispatch mode.

/// Which kernel table serves a call.
enum class DispatchMode {
  kScalar,
  kAvx2,
};

/// Aggregation kinds mirror core::DistanceKind (kernels is a leaf layer and
/// must not depend on core; core/distance.cc owns the mapping).
enum class AggKind : int {
  kL1 = 0,
  kL2 = 1,
  kLInf = 2,
  kWeightedL2 = 3,
};
inline constexpr int kNumAggKinds = 4;

/// \brief One dispatchable kernel set. All function pointers are non-null in
/// both tables (entries without a profitable SIMD form point at the scalar
/// implementation).
struct KernelTable {
  /// out[r] = Agg_i |rows[r*row_stride + i] - target[i]|, the most-similar
  /// hot path. `rows` is a block of `num_rows` float rows of `n` values laid
  /// out `row_stride` floats apart (contiguous when row_stride == n).
  /// `weights` is consulted only by kWeightedL2 (must then have n entries).
  using AbsDiffAggFn = void (*)(const float* rows, size_t row_stride,
                                size_t num_rows, const float* target,
                                const double* weights, size_t n, double* out);
  /// out[r] = Agg_i rows[r*row_stride + i], the highest hot path.
  using ValueAggFn = void (*)(const float* rows, size_t row_stride,
                              size_t num_rows, const double* weights, size_t n,
                              double* out);
  /// Unpacks `count` fixed-width values starting at element `begin` from a
  /// bit-packed word array (PackedIntArray layout) into out[0..count).
  /// Bounds are the caller's job (PackedIntArray::GetMany checks once);
  /// `num_words` is asserted against the last touched word.
  using UnpackFn = void (*)(const uint64_t* words, size_t num_words, int bits,
                            size_t begin, size_t count, uint64_t* out);
  /// out[i] = min_value[i] + scale[i] * codes[i]: one quantised row decoded
  /// against the per-neuron ranges (QuantizedActivationMatrix layout).
  using DequantRowFn = void (*)(const uint8_t* codes, const float* min_value,
                                const float* scale, size_t n, float* out);

  AbsDiffAggFn abs_diff_agg[kNumAggKinds];
  ValueAggFn value_agg[kNumAggKinds];
  UnpackFn unpack;
  DequantRowFn dequant_row;
  const char* name;
};

/// True when this CPU executes AVX2 (runtime cpuid check; false when the
/// AVX2 table was not compiled in, e.g. non-x86 targets).
bool Avx2Supported();

/// The table for an explicit mode. Requesting kAvx2 on a machine where
/// Avx2Supported() is false is a programming error (DE_CHECK); dispatch
/// resolution never does that — tests gate on Avx2Supported().
const KernelTable& GetKernelTable(DispatchMode mode);

/// Pure resolution logic, unit-testable: `env_value` is the raw
/// DEEPEVEREST_KERNELS value (nullptr/empty = auto). "scalar" forces the
/// scalar table; "avx2" requests AVX2 and falls back to scalar (with a
/// warning at startup) when unsupported; anything else warns and autodetects.
DispatchMode ResolveDispatchMode(const char* env_value, bool avx2_supported);

/// The mode serving this process, resolved once on first call from
/// DEEPEVEREST_KERNELS and cpuid. Stable for the process lifetime.
DispatchMode ActiveDispatchMode();

/// The process-wide active table: GetKernelTable(ActiveDispatchMode()).
const KernelTable& Active();

const char* DispatchModeName(DispatchMode mode);

}  // namespace kernels
}  // namespace deepeverest

#endif  // DEEPEVEREST_KERNELS_KERNELS_H_
