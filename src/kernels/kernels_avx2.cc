// AVX2 kernel table. This translation unit is compiled with
// -mavx2 -ffp-contract=off (see CMakeLists.txt); every other file keeps the
// portable baseline, and runtime cpuid decides whether this table is ever
// used. On non-x86 targets (or compilers without -mavx2) the whole file
// degrades to the nullptr stub at the bottom.
//
// Bit-parity discipline (pinned by tests/kernels/kernels_parity_test.cc):
//  - aggregation kernels keep one ROW per 64-bit lane and walk columns in
//    ascending order, so each row's floating-point op order is exactly the
//    scalar loop's; the 4x4 transpose loads only change HOW a column is
//    gathered, not the per-row op sequence;
//  - float->double widening, subtraction, |x| (sign-bit clear), multiply,
//    add and sqrt are all identical IEEE single/double ops lane-wise;
//  - max uses compare+blend to reproduce std::max's exact operand
//    selection (vmaxpd picks the second operand on ties, which flips the
//    sign bit when -0.0 meets +0.0);
//  - row tails and non-SIMD widths run the shared scalar bodies from
//    kernels_scalar_inl.h.
#include "kernels/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <vector>

#include "common/logging.h"
#include "kernels/kernels_scalar_inl.h"

namespace deepeverest {
namespace kernels {

namespace {

/// Column i of four consecutive rows, widened to one double per lane
/// (lane 0 = row 0). Used for column tails where a 4-wide load won't fit.
inline __m256d LoadColumn(const float* const* rows4, size_t i) {
  const __m128 f =
      _mm_setr_ps(rows4[0][i], rows4[1][i], rows4[2][i], rows4[3][i]);
  return _mm256_cvtps_pd(f);
}

/// Columns [i, i+4) of four consecutive rows via one 4x4 float transpose:
/// four contiguous loads + eight shuffles instead of sixteen scalar loads.
/// cols[j] holds column i+j with lane 0 = row 0, identical to LoadColumn.
inline void LoadColumns4(const float* const* rows4, size_t i,
                         __m256d cols[4]) {
  __m128 a0 = _mm_loadu_ps(rows4[0] + i);
  __m128 a1 = _mm_loadu_ps(rows4[1] + i);
  __m128 a2 = _mm_loadu_ps(rows4[2] + i);
  __m128 a3 = _mm_loadu_ps(rows4[3] + i);
  _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
  cols[0] = _mm256_cvtps_pd(a0);
  cols[1] = _mm256_cvtps_pd(a1);
  cols[2] = _mm256_cvtps_pd(a2);
  cols[3] = _mm256_cvtps_pd(a3);
}

inline __m256d AbsPd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// best = std::max(best, v) per lane: (best < v) ? v : best, bit-exact with
/// the scalar std::max including the signed-zero tie case.
inline __m256d MaxLikeStd(__m256d best, __m256d v) {
  const __m256d lt = _mm256_cmp_pd(best, v, _CMP_LT_OQ);
  return _mm256_blendv_pd(best, v, lt);
}

inline __m256d AddPd(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }

/// Target widened to doubles once per kernel call: the per-column broadcast
/// then becomes a pure load-port vbroadcastsd instead of a cvtss2sd plus a
/// shuffle-port register broadcast — the transpose+cvt pipeline is
/// shuffle-bound, so this is a measurable win. Same value, same rounding
/// (float->double is exact), so bit-parity is unaffected.
inline std::vector<double> WidenTarget(const float* target, size_t n) {
  std::vector<double> widened(n);
  for (size_t i = 0; i < n; ++i) widened[i] = static_cast<double>(target[i]);
  return widened;
}
inline __m256d IdentityPd(__m256d v) { return v; }
inline __m256d SqrtPd(__m256d v) { return _mm256_sqrt_pd(v); }

// ---------------------------------------------------------------------------
// Batched aggregation driver. Row blocks of 8 run TWO independent
// accumulator chains (the per-row combine is a serial dependency chain, so
// independent chains are what hides its latency), each over 4 rows kept one
// per lane. Columns advance in ascending order in groups of 4 via the
// transpose loads, with a per-column epilogue for n % 4. Row tails
// (num_rows % 4) run the shared scalar bodies via `row_tail`.
//
//   term(col_vals, i) -> the per-column term (e.g. |v - t| squared)
//   combine(acc, t)   -> add or std::max-like blend
//   final(acc)        -> identity or sqrt
//   kSeedFirst        -> seed the chain from column 0's term instead of 0.0
//                        (LInf; required for all-negative value rows)
// ---------------------------------------------------------------------------

template <bool kSeedFirst, typename TermFn, typename CombineFn,
          typename FinalFn, typename RowTailFn>
inline void AggMany(const float* rows, size_t row_stride, size_t num_rows,
                    size_t n, TermFn term, CombineFn combine, FinalFn final,
                    RowTailFn row_tail, double* out) {
  size_t r = 0;
  if (n > 0) {
    const auto run_chain = [&](const float* const* rows4) {
      __m256d acc;
      size_t i;
      if (kSeedFirst) {
        acc = term(LoadColumn(rows4, 0), 0);
        i = 1;
      } else {
        acc = _mm256_setzero_pd();
        i = 0;
      }
      __m256d cols[4];
      for (; i + 4 <= n; i += 4) {
        LoadColumns4(rows4, i, cols);
        for (int j = 0; j < 4; ++j) {
          acc = combine(acc, term(cols[j], i + j));
        }
      }
      for (; i < n; ++i) {
        acc = combine(acc, term(LoadColumn(rows4, i), i));
      }
      return acc;
    };
    for (; r + 8 <= num_rows; r += 8) {
      const float* a[4] = {rows + r * row_stride,
                           rows + (r + 1) * row_stride,
                           rows + (r + 2) * row_stride,
                           rows + (r + 3) * row_stride};
      const float* b[4] = {rows + (r + 4) * row_stride,
                           rows + (r + 5) * row_stride,
                           rows + (r + 6) * row_stride,
                           rows + (r + 7) * row_stride};
      // Two interleaved chains so the combine latency of one hides behind
      // the other.
      __m256d acc_a;
      __m256d acc_b;
      size_t i;
      if (kSeedFirst) {
        acc_a = term(LoadColumn(a, 0), 0);
        acc_b = term(LoadColumn(b, 0), 0);
        i = 1;
      } else {
        acc_a = _mm256_setzero_pd();
        acc_b = _mm256_setzero_pd();
        i = 0;
      }
      __m256d ca[4];
      __m256d cb[4];
      for (; i + 4 <= n; i += 4) {
        LoadColumns4(a, i, ca);
        LoadColumns4(b, i, cb);
        for (int j = 0; j < 4; ++j) {
          acc_a = combine(acc_a, term(ca[j], i + j));
          acc_b = combine(acc_b, term(cb[j], i + j));
        }
      }
      for (; i < n; ++i) {
        acc_a = combine(acc_a, term(LoadColumn(a, i), i));
        acc_b = combine(acc_b, term(LoadColumn(b, i), i));
      }
      _mm256_storeu_pd(out + r, final(acc_a));
      _mm256_storeu_pd(out + r + 4, final(acc_b));
    }
    for (; r + 4 <= num_rows; r += 4) {
      const float* a[4] = {rows + r * row_stride,
                           rows + (r + 1) * row_stride,
                           rows + (r + 2) * row_stride,
                           rows + (r + 3) * row_stride};
      _mm256_storeu_pd(out + r, final(run_chain(a)));
    }
  }
  for (; r < num_rows; ++r) out[r] = row_tail(r);
}

// ---- abs-diff aggregations (most-similar path) ----

void AbsDiffAggL1Avx2(const float* rows, size_t row_stride, size_t num_rows,
                      const float* target, const double* /*weights*/, size_t n,
                      double* out) {
  const std::vector<double> tpd = WidenTarget(target, n);
  const double* t = tpd.data();
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [t](__m256d v, size_t i) {
        return AbsPd(_mm256_sub_pd(v, _mm256_broadcast_sd(t + i)));
      },
      AddPd, IdentityPd,
      [=](size_t r) {
        return internal::RowAbsDiffL1(rows + r * row_stride, target, n);
      },
      out);
}

void AbsDiffAggL2Avx2(const float* rows, size_t row_stride, size_t num_rows,
                      const float* target, const double* /*weights*/, size_t n,
                      double* out) {
  const std::vector<double> tpd = WidenTarget(target, n);
  const double* t = tpd.data();
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [t](__m256d v, size_t i) {
        const __m256d d = AbsPd(_mm256_sub_pd(v, _mm256_broadcast_sd(t + i)));
        return _mm256_mul_pd(d, d);
      },
      AddPd, SqrtPd,
      [=](size_t r) {
        return internal::RowAbsDiffL2(rows + r * row_stride, target, n);
      },
      out);
}

void AbsDiffAggLInfAvx2(const float* rows, size_t row_stride, size_t num_rows,
                        const float* target, const double* /*weights*/,
                        size_t n, double* out) {
  const std::vector<double> tpd = WidenTarget(target, n);
  const double* t = tpd.data();
  AggMany<true>(
      rows, row_stride, num_rows, n,
      [t](__m256d v, size_t i) {
        return AbsPd(_mm256_sub_pd(v, _mm256_broadcast_sd(t + i)));
      },
      MaxLikeStd, IdentityPd,
      [=](size_t r) {
        return internal::RowAbsDiffLInf(rows + r * row_stride, target, n);
      },
      out);
}

void AbsDiffAggWL2Avx2(const float* rows, size_t row_stride, size_t num_rows,
                       const float* target, const double* weights, size_t n,
                       double* out) {
  const std::vector<double> tpd = WidenTarget(target, n);
  const double* t = tpd.data();
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [t, weights](__m256d v, size_t i) {
        const __m256d d = AbsPd(_mm256_sub_pd(v, _mm256_broadcast_sd(t + i)));
        const __m256d w = _mm256_broadcast_sd(weights + i);
        return _mm256_mul_pd(_mm256_mul_pd(w, d), d);
      },
      AddPd, SqrtPd,
      [=](size_t r) {
        return internal::RowAbsDiffWL2(rows + r * row_stride, target, weights,
                                       n);
      },
      out);
}

// ---- raw-value aggregations (highest path) ----

void ValueAggL1Avx2(const float* rows, size_t row_stride, size_t num_rows,
                    const double* /*weights*/, size_t n, double* out) {
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [](__m256d v, size_t) { return v; }, AddPd, IdentityPd,
      [=](size_t r) { return internal::RowValuesL1(rows + r * row_stride, n); },
      out);
}

void ValueAggL2Avx2(const float* rows, size_t row_stride, size_t num_rows,
                    const double* /*weights*/, size_t n, double* out) {
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [](__m256d v, size_t) { return _mm256_mul_pd(v, v); }, AddPd, SqrtPd,
      [=](size_t r) { return internal::RowValuesL2(rows + r * row_stride, n); },
      out);
}

void ValueAggLInfAvx2(const float* rows, size_t row_stride, size_t num_rows,
                      const double* /*weights*/, size_t n, double* out) {
  AggMany<true>(
      rows, row_stride, num_rows, n,
      [](__m256d v, size_t) { return v; }, MaxLikeStd, IdentityPd,
      [=](size_t r) {
        return internal::RowValuesLInf(rows + r * row_stride, n);
      },
      out);
}

void ValueAggWL2Avx2(const float* rows, size_t row_stride, size_t num_rows,
                     const double* weights, size_t n, double* out) {
  AggMany<false>(
      rows, row_stride, num_rows, n,
      [weights](__m256d v, size_t i) {
        const __m256d w = _mm256_broadcast_sd(weights + i);
        return _mm256_mul_pd(_mm256_mul_pd(w, v), v);
      },
      AddPd, SqrtPd,
      [=](size_t r) {
        return internal::RowValuesWL2(rows + r * row_stride, weights, n);
      },
      out);
}

// ---------------------------------------------------------------------------
// Bulk unpack. SIMD path for the widths that divide a 64-bit word and fit
// at least four values per word (1/2/4/8/16 — the NPI default of 16
// partitions packs at 4 bits): values never straddle a word, so each packed
// word is broadcast once and variable-shifted into 4-value groups. Other
// widths fall back to the shared word-at-a-time scalar body.
// ---------------------------------------------------------------------------

void UnpackAvx2(const uint64_t* words, size_t num_words, int bits,
                size_t begin, size_t count, uint64_t* out) {
  if (count == 0) return;
  if (bits > 16 || (64 % bits) != 0) {
    internal::UnpackScalar(words, num_words, bits, begin, count, out);
    return;
  }
  DE_CHECK_LE(((begin + count) * static_cast<size_t>(bits) + 63) / 64,
              num_words);
  const uint64_t mask = (1ull << bits) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const size_t vals_per_word = 64 / static_cast<size_t>(bits);
  const size_t groups_per_word = vals_per_word / 4;  // >= 1 for bits <= 16

  // Per-group lane shift amounts within one word (constant across words).
  __m256i shifts[16];  // max groups_per_word is 16 (bits == 1)
  for (size_t gidx = 0; gidx < groups_per_word; ++gidx) {
    const long long base = static_cast<long long>(gidx * 4 * bits);
    shifts[gidx] =
        _mm256_setr_epi64x(base, base + bits, base + 2 * bits,
                           base + 3 * bits);
  }

  size_t produced = 0;
  size_t idx = begin;
  // Scalar prologue up to a word boundary.
  while (produced < count && (idx % vals_per_word) != 0) {
    internal::UnpackScalar(words, num_words, bits, idx, 1, out + produced);
    ++produced;
    ++idx;
  }
  // Whole words: broadcast once, shift each 4-value group into lanes.
  while (count - produced >= vals_per_word) {
    const __m256i vw = _mm256_set1_epi64x(
        static_cast<long long>(words[idx / vals_per_word]));
    for (size_t gidx = 0; gidx < groups_per_word; ++gidx) {
      const __m256i vals =
          _mm256_and_si256(_mm256_srlv_epi64(vw, shifts[gidx]), vmask);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + produced + gidx * 4), vals);
    }
    produced += vals_per_word;
    idx += vals_per_word;
  }
  // Scalar tail.
  if (produced < count) {
    internal::UnpackScalar(words, num_words, bits, idx, count - produced,
                           out + produced);
  }
}

// ---------------------------------------------------------------------------
// Quantised row decode: zero-extend 8 codes, convert, multiply by the
// per-neuron scale, add the per-neuron min. vmulps/vaddps are the same IEEE
// single-precision ops the scalar body uses, so decode is bit-identical.
// ---------------------------------------------------------------------------

void DequantRowAvx2(const uint8_t* codes, const float* min_value,
                    const float* scale, size_t n, float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    const __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(scale + i), f);
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(min_value + i), scaled));
  }
  if (i < n) {
    internal::DequantRowScalar(codes + i, min_value + i, scale + i, n - i,
                               out + i);
  }
}

constexpr KernelTable kAvx2Table = {
    {AbsDiffAggL1Avx2, AbsDiffAggL2Avx2, AbsDiffAggLInfAvx2,
     AbsDiffAggWL2Avx2},
    {ValueAggL1Avx2, ValueAggL2Avx2, ValueAggLInfAvx2, ValueAggWL2Avx2},
    UnpackAvx2,
    DequantRowAvx2,
    "avx2",
};

}  // namespace

const KernelTable* GetAvx2KernelTableOrNull() { return &kAvx2Table; }

}  // namespace kernels
}  // namespace deepeverest

#else  // !defined(__AVX2__)

namespace deepeverest {
namespace kernels {

const KernelTable* GetAvx2KernelTableOrNull() { return nullptr; }

}  // namespace kernels
}  // namespace deepeverest

#endif  // defined(__AVX2__)
