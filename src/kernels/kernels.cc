#include "kernels/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "kernels/kernels_scalar_inl.h"

namespace deepeverest {
namespace kernels {

namespace {

using internal::RowAbsDiffL1;
using internal::RowAbsDiffL2;
using internal::RowAbsDiffLInf;
using internal::RowAbsDiffWL2;
using internal::RowValuesL1;
using internal::RowValuesL2;
using internal::RowValuesLInf;
using internal::RowValuesWL2;

void AbsDiffAggL1Scalar(const float* rows, size_t row_stride, size_t num_rows,
                        const float* target, const double* /*weights*/,
                        size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowAbsDiffL1(rows + r * row_stride, target, n);
  }
}

void AbsDiffAggL2Scalar(const float* rows, size_t row_stride, size_t num_rows,
                        const float* target, const double* /*weights*/,
                        size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowAbsDiffL2(rows + r * row_stride, target, n);
  }
}

void AbsDiffAggLInfScalar(const float* rows, size_t row_stride,
                          size_t num_rows, const float* target,
                          const double* /*weights*/, size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowAbsDiffLInf(rows + r * row_stride, target, n);
  }
}

void AbsDiffAggWL2Scalar(const float* rows, size_t row_stride, size_t num_rows,
                         const float* target, const double* weights, size_t n,
                         double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowAbsDiffWL2(rows + r * row_stride, target, weights, n);
  }
}

void ValueAggL1Scalar(const float* rows, size_t row_stride, size_t num_rows,
                      const double* /*weights*/, size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowValuesL1(rows + r * row_stride, n);
  }
}

void ValueAggL2Scalar(const float* rows, size_t row_stride, size_t num_rows,
                      const double* /*weights*/, size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowValuesL2(rows + r * row_stride, n);
  }
}

void ValueAggLInfScalar(const float* rows, size_t row_stride, size_t num_rows,
                        const double* /*weights*/, size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowValuesLInf(rows + r * row_stride, n);
  }
}

void ValueAggWL2Scalar(const float* rows, size_t row_stride, size_t num_rows,
                       const double* weights, size_t n, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = RowValuesWL2(rows + r * row_stride, weights, n);
  }
}

constexpr KernelTable kScalarTable = {
    {AbsDiffAggL1Scalar, AbsDiffAggL2Scalar, AbsDiffAggLInfScalar,
     AbsDiffAggWL2Scalar},
    {ValueAggL1Scalar, ValueAggL2Scalar, ValueAggLInfScalar,
     ValueAggWL2Scalar},
    internal::UnpackScalar,
    internal::DequantRowScalar,
    "scalar",
};

}  // namespace

// Defined by kernels_avx2.cc: the AVX2 table, or nullptr when that TU was
// compiled without AVX2 support (non-x86 target or a compiler without
// -mavx2). Runtime cpuid is checked separately by Avx2Supported().
const KernelTable* GetAvx2KernelTableOrNull();

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported =
      GetAvx2KernelTableOrNull() != nullptr && __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

const KernelTable& GetKernelTable(DispatchMode mode) {
  if (mode == DispatchMode::kAvx2) {
    DE_CHECK(Avx2Supported()) << "AVX2 kernel table requested on a machine "
                                 "without AVX2 (gate on Avx2Supported())";
    return *GetAvx2KernelTableOrNull();
  }
  return kScalarTable;
}

DispatchMode ResolveDispatchMode(const char* env_value, bool avx2_supported) {
  const DispatchMode detected =
      avx2_supported ? DispatchMode::kAvx2 : DispatchMode::kScalar;
  if (env_value == nullptr || *env_value == '\0') return detected;
  if (std::strcmp(env_value, "scalar") == 0) return DispatchMode::kScalar;
  if (std::strcmp(env_value, "avx2") == 0) {
    if (avx2_supported) return DispatchMode::kAvx2;
    DE_LOG_WARNING << "DEEPEVEREST_KERNELS=avx2 but this CPU/build has no "
                      "AVX2 kernels; using scalar";
    return DispatchMode::kScalar;
  }
  DE_LOG_WARNING << "unknown DEEPEVEREST_KERNELS value '" << env_value
                 << "' (want scalar|avx2); autodetecting "
                 << DispatchModeName(detected);
  return detected;
}

DispatchMode ActiveDispatchMode() {
  // Resolved exactly once, on first use anywhere in the process; after this
  // every kernel call site pays one predictable indirect jump per *block*.
  static const DispatchMode mode = [] {
    const DispatchMode m = ResolveDispatchMode(
        std::getenv("DEEPEVEREST_KERNELS"), Avx2Supported());
    DE_LOG_INFO << "kernel dispatch: " << DispatchModeName(m)
                << (Avx2Supported() ? "" : " (no AVX2)");
    return m;
  }();
  return mode;
}

const KernelTable& Active() { return GetKernelTable(ActiveDispatchMode()); }

const char* DispatchModeName(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kScalar:
      return "scalar";
    case DispatchMode::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace kernels
}  // namespace deepeverest
