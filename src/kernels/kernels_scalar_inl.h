#ifndef DEEPEVEREST_KERNELS_KERNELS_SCALAR_INL_H_
#define DEEPEVEREST_KERNELS_KERNELS_SCALAR_INL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/logging.h"

/// Shared scalar kernel bodies, included by BOTH kernel translation units:
/// kernels.cc builds the scalar table from them, kernels_avx2.cc uses them
/// for row tails and for entries without a profitable SIMD form. Keeping one
/// definition is what makes the bit-parity contract trivial for tails — the
/// AVX2 table's leftover rows literally run the scalar code (both TUs are
/// compiled with -ffp-contract=off, so no FMA contraction can split them).
///
/// Floating-point op order here is the canonical one the AVX2 lanes must
/// reproduce: widen float -> double first, accumulate strictly left to
/// right, weighted terms as (w * v) * v.

namespace deepeverest {
namespace kernels {
namespace internal {

inline double RowAbsDiffL1(const float* row, const float* target, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::abs(static_cast<double>(row[i]) -
                              static_cast<double>(target[i]));
    sum += d;
  }
  return sum;
}

inline double RowAbsDiffL2(const float* row, const float* target, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::abs(static_cast<double>(row[i]) -
                              static_cast<double>(target[i]));
    sum += d * d;
  }
  return std::sqrt(sum);
}

inline double RowAbsDiffLInf(const float* row, const float* target, size_t n) {
  if (n == 0) return 0.0;
  double best = std::abs(static_cast<double>(row[0]) -
                         static_cast<double>(target[0]));
  for (size_t i = 1; i < n; ++i) {
    const double d = std::abs(static_cast<double>(row[i]) -
                              static_cast<double>(target[i]));
    best = std::max(best, d);
  }
  return best;
}

inline double RowAbsDiffWL2(const float* row, const float* target,
                            const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::abs(static_cast<double>(row[i]) -
                              static_cast<double>(target[i]));
    sum += weights[i] * d * d;
  }
  return std::sqrt(sum);
}

inline double RowValuesL1(const float* row, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += static_cast<double>(row[i]);
  return sum;
}

inline double RowValuesL2(const float* row, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(row[i]);
    sum += v * v;
  }
  return std::sqrt(sum);
}

inline double RowValuesLInf(const float* row, size_t n) {
  if (n == 0) return 0.0;
  // Seeded from the first element, not 0.0: correct for all-negative rows.
  double best = static_cast<double>(row[0]);
  for (size_t i = 1; i < n; ++i) {
    best = std::max(best, static_cast<double>(row[i]));
  }
  return best;
}

inline double RowValuesWL2(const float* row, const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(row[i]);
    sum += weights[i] * v * v;
  }
  return std::sqrt(sum);
}

/// Word-at-a-time bulk unpack: reads each packed word straight out of the
/// array (no per-element bounds checks — PackedIntArray::GetMany validated
/// the range once) and only touches word+1 when a value actually straddles.
inline void UnpackScalar(const uint64_t* words, size_t num_words, int bits,
                         size_t begin, size_t count, uint64_t* out) {
  if (count == 0) return;
  DE_CHECK_GE(bits, 1);
  DE_CHECK_LE(bits, 64);
  const uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  size_t bit = begin * static_cast<size_t>(bits);
  DE_CHECK_LE(((begin + count) * static_cast<size_t>(bits) + 63) / 64,
              num_words);
  for (size_t i = 0; i < count; ++i, bit += static_cast<size_t>(bits)) {
    const size_t word = bit >> 6;
    const int offset = static_cast<int>(bit & 63);
    uint64_t value = words[word] >> offset;
    if (offset + bits > 64) {
      value |= words[word + 1] << (64 - offset);
    }
    out[i] = value & mask;
  }
}

inline void DequantRowScalar(const uint8_t* codes, const float* min_value,
                             const float* scale, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = min_value[i] + scale[i] * static_cast<float>(codes[i]);
  }
}

}  // namespace internal
}  // namespace kernels
}  // namespace deepeverest

#endif  // DEEPEVEREST_KERNELS_KERNELS_SCALAR_INL_H_
