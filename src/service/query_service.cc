#include "service/query_service.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace deepeverest {
namespace service {

namespace {

// The service creates every trace itself, so the first two span indices are
// invariants: admission opens the root ("query", index 0) and the
// queue-wait span (index 1); the worker that dispatches the query closes
// span 1.
constexpr int kQueueWaitSpan = 1;

/// One structured key=value line for a query that blew the slow-query
/// threshold: identity, outcome, where the time went (top spans by
/// duration). Emitted through the logging sink so tests and operators can
/// capture it.
void EmitSlowQueryLog(const PendingQuery& pending, const Status& status,
                      double latency_seconds, double queue_seconds) {
  const Trace::Data data = pending.ctx->trace->Snapshot();
  // Top spans by duration, root excluded (its duration IS the latency).
  std::vector<const TraceSpan*> spans;
  spans.reserve(data.spans.size());
  for (size_t i = 1; i < data.spans.size(); ++i) {
    spans.push_back(&data.spans[i]);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              return a->duration_nanos > b->duration_nanos;
            });
  std::ostringstream line;
  line << "slow_query trace_id=" << data.id
       << " session=" << pending.query.session_id
       << " qos=" << QosClassName(pending.query.qos)
       << " status=" << StatusCodeToString(status.code())
       << " latency_s=" << latency_seconds
       << " queue_s=" << queue_seconds << " spans=\"";
  const size_t top = std::min<size_t>(3, spans.size());
  for (size_t i = 0; i < top; ++i) {
    if (i > 0) line << ",";
    line << spans[i]->name << ":"
         << static_cast<double>(spans[i]->duration_nanos) * 1e-9 << "s";
  }
  line << "\"";
  DE_LOG_WARNING << line.str();
}

/// Flat session round-robin, FIFO within a session — the pre-QoS dispatch
/// (PR 1): every class is equal, deadlines do not reorder anything.
class SessionRoundRobinPolicy : public DispatchPolicy {
 public:
  void Enqueue(PendingQuery pending) override {
    const uint64_t session = pending.query.session_id;
    auto& queue = queues_[session];
    if (queue.empty()) rotor_.push_back(session);
    queue.push_back(std::move(pending));
    ++size_;
  }

  PendingQuery PopNext() override {
    const uint64_t session = rotor_.front();
    rotor_.pop_front();
    auto it = queues_.find(session);
    DE_CHECK(it != queues_.end() && !it->second.empty());
    PendingQuery pending = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      rotor_.push_back(session);
    }
    --size_;
    return pending;
  }

  size_t size() const override { return size_; }

  size_t QueuedForSession(uint64_t session) const override {
    auto it = queues_.find(session);
    return it == queues_.end() ? 0 : it->second.size();
  }

  size_t ActiveSessions() const override { return queues_.size(); }

  std::vector<PendingQuery> DrainAll() override {
    std::vector<PendingQuery> all;
    all.reserve(size_);
    for (auto& [session, queue] : queues_) {
      for (PendingQuery& pending : queue) all.push_back(std::move(pending));
    }
    queues_.clear();
    rotor_.clear();
    size_ = 0;
    return all;
  }

 private:
  std::map<uint64_t, std::deque<PendingQuery>> queues_;
  std::deque<uint64_t> rotor_;
  size_t size_ = 0;
};

/// QoS dispatch: strict class priority (interactive > batch > best_effort).
/// Within a class, deadline-carrying queries run first in
/// earliest-deadline-first order (a deadline is a stronger statement of
/// urgency than queue position); deadline-free queries are served weighted
/// round-robin across the class's sessions, FIFO within a session.
class QosDispatchPolicy : public DispatchPolicy {
 public:
  void Enqueue(PendingQuery pending) override {
    Lane& lane = lanes_[QosIndex(pending.query.qos)];
    const uint64_t session = pending.query.session_id;
    ++session_depth_[session];
    ++size_;
    if (pending.ctx->has_deadline()) {
      lane.edf.emplace(pending.ctx->deadline(), std::move(pending));
      return;
    }
    lane.weights[session] = std::max(1, pending.query.weight);
    auto& queue = lane.sessions[session];
    if (queue.empty()) lane.rotor.push_back(session);
    queue.push_back(std::move(pending));
  }

  PendingQuery PopNext() override {
    for (Lane& lane : lanes_) {
      if (lane.empty()) continue;
      PendingQuery pending = PopFromLane(&lane);
      auto depth = session_depth_.find(pending.query.session_id);
      DE_CHECK(depth != session_depth_.end());
      if (--depth->second == 0) session_depth_.erase(depth);
      --size_;
      return pending;
    }
    DE_CHECK(false) << "PopNext on an empty dispatch policy";
    return PendingQuery{};
  }

  size_t size() const override { return size_; }

  size_t QueuedForSession(uint64_t session) const override {
    auto it = session_depth_.find(session);
    return it == session_depth_.end() ? 0 : it->second;
  }

  size_t ActiveSessions() const override { return session_depth_.size(); }

  std::vector<PendingQuery> DrainAll() override {
    std::vector<PendingQuery> all;
    all.reserve(size_);
    for (Lane& lane : lanes_) {
      for (auto& [deadline, pending] : lane.edf) {
        all.push_back(std::move(pending));
      }
      lane.edf.clear();
      for (auto& [session, queue] : lane.sessions) {
        for (PendingQuery& pending : queue) all.push_back(std::move(pending));
      }
      lane.sessions.clear();
      lane.rotor.clear();
      lane.weights.clear();
      lane.credits = 0;
    }
    session_depth_.clear();
    size_ = 0;
    return all;
  }

 private:
  struct Lane {
    /// Deadline-carrying queries, ordered by absolute deadline (EDF).
    std::multimap<core::QueryContext::Clock::time_point, PendingQuery> edf;
    /// Deadline-free queries: per-session FIFO + weighted round-robin.
    std::map<uint64_t, std::deque<PendingQuery>> sessions;
    std::deque<uint64_t> rotor;       // sessions with queued work, in turn
    std::map<uint64_t, int> weights;  // last submitted weight per session
    int credits = 0;  // dispatches left in the front session's turn

    bool empty() const { return edf.empty() && rotor.empty(); }
  };

  PendingQuery PopFromLane(Lane* lane) {
    if (!lane->edf.empty()) {
      auto it = lane->edf.begin();
      PendingQuery pending = std::move(it->second);
      lane->edf.erase(it);
      return pending;
    }
    const uint64_t session = lane->rotor.front();
    if (lane->credits == 0) lane->credits = lane->weights[session];
    auto it = lane->sessions.find(session);
    DE_CHECK(it != lane->sessions.end() && !it->second.empty());
    PendingQuery pending = std::move(it->second.front());
    it->second.pop_front();
    --lane->credits;
    if (it->second.empty()) {
      lane->sessions.erase(it);
      lane->weights.erase(session);
      lane->rotor.pop_front();
      lane->credits = 0;
    } else if (lane->credits == 0) {
      lane->rotor.pop_front();
      lane->rotor.push_back(session);
    }
    return pending;
  }

  std::array<Lane, kNumQosClasses> lanes_;
  /// Queued queries per session across all lanes (admission bound +
  /// active-session reporting).
  std::map<uint64_t, size_t> session_depth_;
  size_t size_ = 0;
};

/// The dispatch policy QueryServiceOptions selects (see
/// QueryServiceOptions::dispatch_policy).
std::unique_ptr<DispatchPolicy> MakePolicy(const QueryServiceOptions& options) {
  if (options.dispatch_policy) return options.dispatch_policy();
  if (options.enable_qos) return std::make_unique<QosDispatchPolicy>();
  return std::make_unique<SessionRoundRobinPolicy>();
}

}  // namespace

Result<std::unique_ptr<QueryService>> QueryService::Create(
    core::DeepEverest* engine, const QueryServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine is required");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.batch_linger_seconds < 0.0 ||
      options.interactive_batch_linger_seconds < 0.0 ||
      options.best_effort_batch_linger_seconds < 0.0) {
    return Status::InvalidArgument("batch linger windows must be >= 0");
  }
  if (options.batch_dispatchers < 0) {
    return Status::InvalidArgument("batch_dispatchers must be >= 0");
  }
  return std::unique_ptr<QueryService>(new QueryService(engine, options));
}

QueryService::QueryService(core::DeepEverest* engine,
                           const QueryServiceOptions& options)
    : engine_(engine),
      options_(options),
      trace_ring_(options.trace_ring_capacity),
      policy_(MakePolicy(options)) {
  // Park-and-switch relies on strict class priority (the pop after a park
  // must yield the waiting interactive query); a custom policy makes no
  // such promise, so preemption is gated on the built-in QoS policy.
  preemption_enabled_ = options_.enable_preemption && options_.enable_qos &&
                        !options_.dispatch_policy;
  // With a single worker at most one query is ever in flight, so batches
  // could never be shared — skip the scheduler rather than pay its linger
  // window on every partial round.
  if (options_.enable_cross_query_batching && options_.num_workers > 1) {
    nn::BatchSchedulerOptions scheduler_options;
    scheduler_options.linger_seconds = options_.batch_linger_seconds;
    scheduler_options.interactive_linger_seconds =
        options_.interactive_batch_linger_seconds;
    scheduler_options.best_effort_linger_seconds =
        options_.best_effort_batch_linger_seconds;
    scheduler_options.qos_aware = options_.enable_qos;
    scheduler_options.num_dispatchers = options_.batch_dispatchers > 0
                                            ? options_.batch_dispatchers
                                            : options_.num_workers;
    scheduler_ = std::make_unique<nn::BatchingInferenceScheduler>(
        engine_->inference(), scheduler_options);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<std::future<Result<core::TopKResult>>> QueryService::Submit(
    core::QuerySpec spec) {
  DE_ASSIGN_OR_RETURN(Submission submission,
                      SubmitWithControl(std::move(spec)));
  return std::move(submission.result);
}

Result<Submission> QueryService::SubmitWithControl(core::QuerySpec spec) {
  // The one validation choke point every entry point shares (QL parsing
  // and the wire decoder already ran it; programmatic callers get the
  // identical errors here).
  DE_RETURN_NOT_OK(core::ValidateSpec(spec));
  const int class_index = QosIndex(spec.qos);

  PendingQuery pending;
  pending.query = std::move(spec);
  pending.ctx = std::make_shared<core::QueryContext>();
  pending.ctx->session_id = pending.query.session_id;
  pending.ctx->qos = pending.query.qos;
  pending.ctx->scheduler = scheduler_.get();
  // The sink moves into the context (its home for the execution); the
  // caller keeps control through the Submission's context handle instead.
  pending.ctx->on_progress = std::move(pending.query.on_progress);
  pending.query.on_progress = nullptr;
  // Every query is traced from admission on (see
  // QueryServiceOptions::trace_ring_capacity). The root span stays open
  // until the layer that finishes the query's life calls Trace::Finish()
  // — the HTTP front-end after serialization, or the ring push below for
  // engine-level callers that never look at the trace.
  pending.ctx->trace = std::make_shared<Trace>(Trace::NextId());
  const int root = pending.ctx->trace->StartSpan("query");
  pending.ctx->trace->AddInt(root, "session", static_cast<int64_t>(
                                                  pending.query.session_id));
  pending.ctx->trace->AddInt(root, "qos",
                             static_cast<int64_t>(QosIndex(pending.query.qos)));
  pending.ctx->trace->StartSpan("queue_wait");
  Submission submission;
  submission.context = pending.ctx;
  submission.result = pending.promise.get_future();

  {
    common::MutexLock lock(&mu_);
    if (stopping_) {
      return Status::FailedPrecondition("query service is shutting down");
    }
    if (policy_->size() >= options_.max_queue_depth) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(policy_->size()) +
          " queued)");
    }
    if (options_.max_queued_per_session > 0 &&
        policy_->QueuedForSession(pending.query.session_id) >=
            options_.max_queued_per_session) {
      rejected_session_limit_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "session " + std::to_string(pending.query.session_id) +
          " is at its queued-query limit");
    }
    // The deadline clock starts at admission: queue wait counts against
    // it. deadline_ms == 0 means "already due": one nanosecond (the
    // smallest positive deadline) is guaranteed to have passed by the time
    // a worker looks at the queue, so the query is rejected at dispatch
    // without running any inference.
    if (pending.query.deadline_ms >= 0.0) {
      pending.ctx->SetDeadlineAfter(
          std::max(pending.query.deadline_ms * 1e-3, 1e-9));
    }
    pending.wait.Reset();
    const bool interactive =
        pending.query.qos == QosClass::kInteractive;
    policy_->Enqueue(std::move(pending));
    // The preemption hint: workers poll this between NTA rounds. Written
    // only with mu_ held (here and in PopLocked), so it can never drift
    // from the queue's actual interactive backlog.
    if (interactive) {
      interactive_waiting_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  per_class_[class_index].submitted.fetch_add(1, std::memory_order_relaxed);
  work_cv_.NotifyOne();
  return submission;
}

Result<core::TopKResult> QueryService::Execute(core::QuerySpec spec) {
  DE_ASSIGN_OR_RETURN(std::future<Result<core::TopKResult>> future,
                      Submit(std::move(spec)));
  return future.get();
}

void QueryService::CountOutcome(const Result<core::TopKResult>& result,
                                QosClass qos, bool executed) {
  CompletionCounters* const counters[2] = {&totals_,
                                           &per_class_[QosIndex(qos)]};
  for (CompletionCounters* c : counters) {
    if (result.ok()) {
      c->completed.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      // Expired while queued (never ran) vs. aborted mid-execution.
      (executed ? c->deadline_exceeded : c->rejected_past_deadline)
          .fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsCancelled()) {
      c->cancelled.fetch_add(1, std::memory_order_relaxed);
    } else {
      c->failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PendingQuery QueryService::PopLocked() {
  PendingQuery pending = policy_->PopNext();
  if (pending.query.qos == QosClass::kInteractive) {
    interactive_waiting_.fetch_add(-1, std::memory_order_relaxed);
  }
  if (pending.execution != nullptr) {
    // A parked query coming back: the execution object rides along, so
    // this (possibly different) worker continues exactly where the parking
    // worker stopped.
    --parked_;
    resumed_total_.fetch_add(1, std::memory_order_relaxed);
  }
  return pending;
}

void QueryService::WorkerLoop() {
  for (;;) {
    PendingQuery pending;
    {
      common::MutexLock lock(&mu_);
      // Explicit wait loop (not a predicate lambda) so the thread-safety
      // analysis sees the guarded reads happen with mu_ held.
      while (!stopping_ && policy_->size() == 0) work_cv_.Wait(&mu_);
      if (policy_->size() == 0) return;  // stopping, queue drained/cancelled
      pending = PopLocked();
      ++inflight_;
    }

    // ProcessPending returns true when it parked the query and swapped an
    // interactive one into `pending` — keep going until the worker's query
    // actually finishes.
    while (ProcessPending(&pending)) {
    }

    {
      common::MutexLock lock(&mu_);
      --inflight_;
      // Parked queries keep policy_->size() > 0, so Drain() correctly
      // keeps waiting until they are resumed and finished.
      if (policy_->size() == 0 && inflight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

bool QueryService::ProcessPending(PendingQuery* pending) {
  const bool resumed = pending->execution != nullptr;
  const QosClass qos = pending->query.qos;
  Trace* const trace = pending->ctx->trace.get();
  if (resumed) {
    if (trace != nullptr && pending->parked_span >= 0) {
      trace->EndSpan(pending->parked_span);
    }
    pending->parked_span = -1;
  } else {
    pending->queue_seconds = pending->wait.ElapsedSeconds();
    if (trace != nullptr) trace->EndSpan(kQueueWaitSpan);
  }

  // Re-validate after every lock handoff: cancellation or the deadline may
  // have fired while the query sat queued (never ran) or parked (ran some
  // rounds already).
  if (pending->ctx->cancelled()) {
    CompletePending(pending,
                    Status::Cancelled(resumed ? "cancelled while parked"
                                              : "cancelled while queued"),
                    /*executed=*/resumed);
    return false;
  }
  if (pending->ctx->DeadlineExpired()) {
    // A fresh query whose deadline passed while queued is rejected at
    // dispatch (rejected_past_deadline — no inference ran). A parked one
    // DID execute rounds, so it counts as deadline_exceeded; either way the
    // worker slot is not burned stepping a query nobody is waiting for.
    CompletePending(
        pending,
        Status::DeadlineExceeded(
            resumed ? "deadline expired while parked"
                    : "deadline expired after " +
                          std::to_string(pending->queue_seconds) +
                          "s in the admission queue"),
        /*executed=*/resumed);
    return false;
  }

  pending->ctx->set_lifecycle(core::QueryContext::Lifecycle::kRunning);
  Stopwatch episode;
  if (!resumed) {
    if (trace != nullptr) {
      pending->execute_span = trace->StartSpan("execute");
    }
    Result<std::unique_ptr<core::QueryExecution>> begun =
        engine_->BeginSpec(pending->query, pending->ctx.get());
    if (!begun.ok()) {
      const double episode_seconds = episode.ElapsedSeconds();
      pending->exec_seconds += episode_seconds;
      busy_nanos_.fetch_add(static_cast<int64_t>(episode_seconds * 1e9),
                            std::memory_order_relaxed);
      CompletePending(pending, begun.status(), /*executed=*/true);
      return false;
    }
    pending->execution = std::move(begun).value();
  }

  core::QueryExecution* const execution = pending->execution.get();
  const bool preemptible =
      preemption_enabled_ && qos != QosClass::kInteractive;
  while (!execution->done()) {
    // Step errors (including between-rounds deadline/cancellation aborts)
    // surface through done() + TakeResult(), so the loop needs no separate
    // error path.
    const Status step = execution->Step();
    static_cast<void>(step);
    if (execution->done()) break;
    if (preemptible &&
        interactive_waiting_.load(std::memory_order_relaxed) > 0) {
      if (TryParkAndSwitch(pending, episode.ElapsedSeconds())) return true;
      // Stale hint (or stopping): nothing was parked or charged — the
      // episode stopwatch keeps running and the loop keeps stepping.
    }
  }
  const double episode_seconds = episode.ElapsedSeconds();
  pending->exec_seconds += episode_seconds;
  busy_nanos_.fetch_add(static_cast<int64_t>(episode_seconds * 1e9),
                        std::memory_order_relaxed);
  CompletePending(pending, execution->TakeResult(), /*executed=*/true);
  return false;
}

bool QueryService::TryParkAndSwitch(PendingQuery* pending,
                                    double episode_seconds) {
  common::MutexLock lock(&mu_);
  // The hint was a relaxed read; re-validate against the authoritative
  // state now that mu_ is held.
  if (stopping_) return false;
  if (interactive_waiting_.load(std::memory_order_relaxed) <= 0) return false;

  pending->exec_seconds += episode_seconds;
  busy_nanos_.fetch_add(static_cast<int64_t>(episode_seconds * 1e9),
                        std::memory_order_relaxed);
  Trace* const trace = pending->ctx->trace.get();
  if (trace != nullptr) pending->parked_span = trace->StartSpan("parked");
  pending->ctx->set_lifecycle(core::QueryContext::Lifecycle::kParked);
  ++parked_;
  parked_total_.fetch_add(1, std::memory_order_relaxed);
  preemptions_.fetch_add(1, std::memory_order_relaxed);
  policy_->Enqueue(std::move(*pending));
  // Enqueue + pop under the same hold: the queue's net size is unchanged
  // (no wakeup needed, none lost), and because the interactive counter is
  // positive under this same lock and the QoS policy serves strict class
  // priority, this pop is guaranteed to yield an interactive query — never
  // the non-interactive one just parked.
  *pending = PopLocked();
  return true;
}

void QueryService::CompletePending(PendingQuery* pending,
                                   Result<core::TopKResult> result,
                                   bool executed) {
  Trace* const trace = pending->ctx->trace.get();
  // Destroy the execution first: for queries abandoned mid-flight
  // (cancelled/expired while parked) its destructor closes the still-open
  // "nta" span, which must happen before the trace is pushed.
  pending->execution.reset();
  if (trace != nullptr && pending->execute_span >= 0) {
    trace->EndSpan(pending->execute_span);
    pending->execute_span = -1;
  }
  pending->ctx->set_lifecycle(core::QueryContext::Lifecycle::kFinished);
  if (result.ok()) {
    result.value().stats.queue_seconds = pending->queue_seconds;
  }
  const QosClass qos = pending->query.qos;
  CountOutcome(result, qos, executed);
  // Admission-to-completion latency, parked gaps included — what a waiting
  // client actually experienced. (Worker busy time is charged per episode
  // in ProcessPending/TryParkAndSwitch, never here.)
  const double latency = pending->wait.ElapsedSeconds();
  if (executed) {
    totals_.latency.Record(latency);
    per_class_[QosIndex(qos)].latency.Record(latency);
  }
  if (trace != nullptr) {
    if (options_.slow_query_seconds > 0.0 &&
        latency >= options_.slow_query_seconds) {
      EmitSlowQueryLog(*pending, result.ok() ? Status::OK() : result.status(),
                       latency, pending->queue_seconds);
    }
    // Into the ring before the future resolves, so a client can fetch
    // /v1/trace/<id> the moment its response arrives. The serialization
    // span the HTTP layer adds afterwards still lands in this same trace
    // object (the ring holds shared_ptrs).
    trace_ring_.Push(pending->ctx->trace);
  }
  pending->promise.set_value(std::move(result));
}

void QueryService::Drain() {
  common::MutexLock lock(&mu_);
  while (policy_->size() != 0 || inflight_ != 0) idle_cv_.Wait(&mu_);
}

void QueryService::Shutdown() {
  {
    common::MutexLock lock(&mu_);
    if (stopping_) {
      // Already shut down (or shutting down from the destructor after an
      // explicit Shutdown()).
    } else {
      stopping_ = true;
      // Fail queries that never started — and parked ones, which started
      // but will never be resumed; their futures resolve immediately.
      const Result<core::TopKResult> cancelled =
          Result<core::TopKResult>(Status::Cancelled("query service shut "
                                                     "down"));
      for (PendingQuery& pending : policy_->DrainAll()) {
        pending.execution.reset();  // closes any open NTA trace span
        pending.ctx->set_lifecycle(core::QueryContext::Lifecycle::kFinished);
        pending.promise.set_value(cancelled);
        CountOutcome(cancelled, pending.query.qos, /*executed=*/false);
      }
      parked_ = 0;
      interactive_waiting_.store(0, std::memory_order_relaxed);
      idle_cv_.NotifyAll();
    }
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  stats.submitted = totals_.submitted.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  stats.rejected_session_limit =
      rejected_session_limit_.load(std::memory_order_relaxed);
  stats.completed = totals_.completed.load(std::memory_order_relaxed);
  stats.failed = totals_.failed.load(std::memory_order_relaxed);
  stats.cancelled = totals_.cancelled.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      totals_.deadline_exceeded.load(std::memory_order_relaxed);
  stats.rejected_past_deadline =
      totals_.rejected_past_deadline.load(std::memory_order_relaxed);
  {
    common::MutexLock lock(&mu_);
    // Parked queries occupy dispatch-queue slots (max_queue_depth counts
    // them) but report separately: queue_depth is queries that have not
    // started yet.
    stats.queue_depth = policy_->size() - parked_;
    stats.inflight = inflight_;
    stats.active_sessions = policy_->ActiveSessions();
    stats.parked = parked_;
  }
  stats.parked_total = parked_total_.load(std::memory_order_relaxed);
  stats.resumed_total = resumed_total_.load(std::memory_order_relaxed);
  stats.preemptions = preemptions_.load(std::memory_order_relaxed);
  stats.p50_latency_seconds = totals_.latency.PercentileSeconds(0.50);
  stats.p90_latency_seconds = totals_.latency.PercentileSeconds(0.90);
  stats.p99_latency_seconds = totals_.latency.PercentileSeconds(0.99);
  stats.latency_buckets.resize(
      static_cast<size_t>(LatencyHistogram::num_buckets()));
  for (int i = 0; i < LatencyHistogram::num_buckets(); ++i) {
    stats.latency_buckets[static_cast<size_t>(i)] =
        totals_.latency.BucketCount(i);
  }
  stats.approx_latency_sum_seconds = totals_.latency.ApproxSumSeconds();
  stats.qos_enabled = options_.enable_qos;
  stats.num_workers = options_.num_workers;
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.worker_busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  if (stats.uptime_seconds > 0.0 && stats.num_workers > 0) {
    stats.worker_utilization =
        stats.worker_busy_seconds /
        (stats.uptime_seconds * static_cast<double>(stats.num_workers));
    if (stats.worker_utilization > 1.0) stats.worker_utilization = 1.0;
  }
  if (engine_->iqa_cache() != nullptr) {
    stats.iqa_shards = engine_->iqa_cache()->ShardSnapshots();
  }
  if (scheduler_ != nullptr) {
    stats.batching_enabled = true;
    stats.batch_size = scheduler_->batch_size();
    stats.batching = scheduler_->stats();
  }
  for (int c = 0; c < kNumQosClasses; ++c) {
    QosClassStats& out = stats.per_class[static_cast<size_t>(c)];
    const CompletionCounters& in = per_class_[static_cast<size_t>(c)];
    out.submitted = in.submitted.load(std::memory_order_relaxed);
    out.completed = in.completed.load(std::memory_order_relaxed);
    out.failed = in.failed.load(std::memory_order_relaxed);
    out.cancelled = in.cancelled.load(std::memory_order_relaxed);
    out.deadline_exceeded =
        in.deadline_exceeded.load(std::memory_order_relaxed);
    out.rejected_past_deadline =
        in.rejected_past_deadline.load(std::memory_order_relaxed);
    out.p50_latency_seconds = in.latency.PercentileSeconds(0.50);
    out.p90_latency_seconds = in.latency.PercentileSeconds(0.90);
    out.p99_latency_seconds = in.latency.PercentileSeconds(0.99);
    out.latency_buckets.resize(
        static_cast<size_t>(LatencyHistogram::num_buckets()));
    for (int i = 0; i < LatencyHistogram::num_buckets(); ++i) {
      out.latency_buckets[static_cast<size_t>(i)] = in.latency.BucketCount(i);
    }
    out.approx_latency_sum_seconds = in.latency.ApproxSumSeconds();
    if (stats.batching_enabled) {
      out.batch_fill = stats.batching.per_class[static_cast<size_t>(c)]
                           .AverageFill(stats.batch_size);
    }
  }
  return stats;
}

}  // namespace service
}  // namespace deepeverest
