#include "service/query_service.h"

#include <utility>

namespace deepeverest {
namespace service {

Result<std::unique_ptr<QueryService>> QueryService::Create(
    core::DeepEverest* engine, const QueryServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine is required");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.batch_linger_seconds < 0.0) {
    return Status::InvalidArgument("batch_linger_seconds must be >= 0");
  }
  if (options.batch_dispatchers < 0) {
    return Status::InvalidArgument("batch_dispatchers must be >= 0");
  }
  return std::unique_ptr<QueryService>(new QueryService(engine, options));
}

QueryService::QueryService(core::DeepEverest* engine,
                           const QueryServiceOptions& options)
    : engine_(engine), options_(options) {
  // With a single worker at most one query is ever in flight, so batches
  // could never be shared — skip the scheduler rather than pay its linger
  // window on every partial round.
  if (options_.enable_cross_query_batching && options_.num_workers > 1) {
    nn::BatchSchedulerOptions scheduler_options;
    scheduler_options.linger_seconds = options_.batch_linger_seconds;
    scheduler_options.num_dispatchers = options_.batch_dispatchers > 0
                                            ? options_.batch_dispatchers
                                            : options_.num_workers;
    scheduler_ = std::make_unique<nn::BatchingInferenceScheduler>(
        engine_->inference(), scheduler_options);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<std::future<Result<core::TopKResult>>> QueryService::Submit(
    TopKQuery query) {
  if (query.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query.group.neurons.empty()) {
    return Status::InvalidArgument("neuron group is empty");
  }
  if (query.theta <= 0.0 || query.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }

  Pending pending;
  pending.query = std::move(query);
  std::future<Result<core::TopKResult>> future =
      pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("query service is shutting down");
    }
    if (queued_ >= options_.max_queue_depth) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("admission queue full (" +
                                       std::to_string(queued_) + " queued)");
    }
    auto it = queues_.find(pending.query.session_id);
    if (options_.max_queued_per_session > 0 && it != queues_.end() &&
        it->second.size() >= options_.max_queued_per_session) {
      rejected_session_limit_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "session " + std::to_string(pending.query.session_id) +
          " is at its queued-query limit");
    }
    auto& session_queue = queues_[pending.query.session_id];
    if (session_queue.empty()) {
      round_robin_.push_back(pending.query.session_id);
    }
    pending.wait.Reset();
    session_queue.push_back(std::move(pending));
    ++queued_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return future;
}

Result<core::TopKResult> QueryService::Execute(TopKQuery query) {
  DE_ASSIGN_OR_RETURN(std::future<Result<core::TopKResult>> future,
                      Submit(std::move(query)));
  return future.get();
}

Result<core::TopKResult> QueryService::Run(const TopKQuery& query) {
  core::NtaOptions options;
  options.k = query.k;
  options.theta = query.theta;
  // Deterministic serving: tie-complete termination makes NTA return the
  // canonical (value, input id)-ordered top-k, matching the §4.6 fresh-scan
  // path even on exact value ties at the k-th boundary.
  options.tie_complete = true;
  // Cross-query batching: this worker's inference merges into shared device
  // batches with whatever else is in flight.
  options.scheduler = scheduler_.get();
  switch (query.kind) {
    case TopKQuery::Kind::kHighest:
      return engine_->TopKHighestWithOptions(query.group, std::move(options));
    case TopKQuery::Kind::kMostSimilar:
      return engine_->TopKMostSimilarWithOptions(query.target_id, query.group,
                                                 std::move(options));
  }
  return Status::InvalidArgument("unknown query kind");
}

void QueryService::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) return;  // stopping, queue drained/cancelled

      // Round-robin across sessions, FIFO within a session.
      const uint64_t session = round_robin_.front();
      round_robin_.pop_front();
      auto it = queues_.find(session);
      DE_CHECK(it != queues_.end() && !it->second.empty());
      pending = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) {
        queues_.erase(it);
      } else {
        round_robin_.push_back(session);
      }
      --queued_;
      ++inflight_;
    }

    const double queue_seconds = pending.wait.ElapsedSeconds();
    Stopwatch exec_watch;
    Result<core::TopKResult> result = Run(pending.query);
    const double exec_seconds = exec_watch.ElapsedSeconds();

    if (result.ok()) {
      result.value().stats.queue_seconds = queue_seconds;
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    latency_.Record(queue_seconds + exec_seconds);
    busy_nanos_.fetch_add(static_cast<int64_t>(exec_seconds * 1e9),
                          std::memory_order_relaxed);
    pending.promise.set_value(std::move(result));

    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (queued_ == 0 && inflight_ == 0) idle_cv_.notify_all();
    }
  }
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && inflight_ == 0; });
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already shut down (or shutting down from the destructor after an
      // explicit Shutdown()).
    } else {
      stopping_ = true;
      // Fail queries that never started; their futures resolve immediately.
      for (auto& [session, session_queue] : queues_) {
        for (Pending& pending : session_queue) {
          pending.promise.set_value(
              Status::Cancelled("query service shut down"));
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      queues_.clear();
      round_robin_.clear();
      queued_ = 0;
      idle_cv_.notify_all();
    }
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  stats.rejected_session_limit =
      rejected_session_limit_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queued_;
    stats.inflight = inflight_;
    stats.active_sessions = queues_.size();
  }
  stats.p50_latency_seconds = latency_.PercentileSeconds(0.50);
  stats.p90_latency_seconds = latency_.PercentileSeconds(0.90);
  stats.p99_latency_seconds = latency_.PercentileSeconds(0.99);
  stats.num_workers = options_.num_workers;
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.worker_busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  if (stats.uptime_seconds > 0.0 && stats.num_workers > 0) {
    stats.worker_utilization =
        stats.worker_busy_seconds /
        (stats.uptime_seconds * static_cast<double>(stats.num_workers));
    if (stats.worker_utilization > 1.0) stats.worker_utilization = 1.0;
  }
  if (engine_->iqa_cache() != nullptr) {
    stats.iqa_shards = engine_->iqa_cache()->ShardSnapshots();
  }
  if (scheduler_ != nullptr) {
    stats.batching_enabled = true;
    stats.batch_size = scheduler_->batch_size();
    stats.batching = scheduler_->stats();
  }
  return stats;
}

}  // namespace service
}  // namespace deepeverest
