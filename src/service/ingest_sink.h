#ifndef DEEPEVEREST_SERVICE_INGEST_SINK_H_
#define DEEPEVEREST_SERVICE_INGEST_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace deepeverest {
namespace service {

/// One input submitted for ingestion.
struct IngestInput {
  std::vector<float> values;
  int label = 0;
};

/// Acknowledgement of a durably accepted ingest batch. Once returned, the
/// inputs survive any crash and will be indexed exactly once.
struct IngestAck {
  uint32_t first_id = 0;      // dense id of the first accepted input
  uint32_t count = 0;         // number of inputs accepted
  uint32_t dataset_size = 0;  // dataset size after the batch
};

/// Per-layer index high-watermark: input ids [0, watermark) are indexed.
struct IngestLayerWatermark {
  int layer = 0;
  uint32_t watermark = 0;
};

/// Observability snapshot of one model's ingest pipeline.
struct IngestStats {
  uint32_t dataset_size = 0;
  /// Inputs durably accepted since process start.
  int64_t ingested_total = 0;
  /// Batches rejected because the apply backlog was full (HTTP 429).
  int64_t rejected_total = 0;
  /// Apply passes the background worker has completed.
  int64_t applies_total = 0;
  /// Minimum watermark across built layers; equals dataset_size when the
  /// index tier is fully caught up (0 when no layer is built yet).
  uint32_t min_watermark = 0;
  std::vector<IngestLayerWatermark> layers;
  int64_t snapshots_written = 0;
  /// Size and age of the last committed snapshot (-1 age = none yet).
  int64_t snapshot_bytes = 0;
  double snapshot_age_seconds = -1.0;
  uint32_t snapshot_dataset_size = 0;
};

/// \brief Abstract ingest endpoint one model's service exposes.
///
/// Implemented by persist::IngestQueue; the service/net layers only see this
/// interface, so the network front-end routes `POST /v1/ingest` and the
/// snapshot admin endpoints without depending on the persistence subsystem.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  /// Durably accepts a batch (appends to the ingest log, publishes to the
  /// dataset) and schedules incremental index maintenance. Returns
  /// ResourceExhausted when the apply backlog is over the admission bound.
  virtual Result<IngestAck> Ingest(const std::vector<IngestInput>& inputs) = 0;

  /// Current pipeline counters and watermarks.
  virtual IngestStats Stats() const = 0;

  /// Forces a full catch-up of every built layer followed by a committed
  /// snapshot; blocks until the manifest rename is durable.
  virtual Status SaveSnapshot() = 0;
};

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_INGEST_SINK_H_
