#ifndef DEEPEVEREST_SERVICE_QUERY_SERVICE_H_
#define DEEPEVEREST_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"
#include "core/query.h"
#include "nn/batch_scheduler.h"
#include "service/service_stats.h"

namespace deepeverest {
namespace service {

/// \brief One client query submitted to the service.
struct TopKQuery {
  enum class Kind {
    kHighest,      // TopKHighest: largest aggregated activations
    kMostSimilar,  // TopKMostSimilar: closest to dataset input `target_id`
  };

  Kind kind = Kind::kHighest;
  core::NeuronGroup group;
  int k = 20;
  uint32_t target_id = 0;  // kMostSimilar only
  /// θ-approximation factor in (0, 1]; 1.0 = exact (paper section 6).
  double theta = 1.0;
  /// Client session for admission fairness. Queries from the same session
  /// run FIFO relative to each other; distinct sessions are served
  /// round-robin so one chatty client cannot starve the rest.
  uint64_t session_id = 0;
};

struct QueryServiceOptions {
  /// Fixed-size worker pool executing queries against the shared engine.
  int num_workers = 4;
  /// Bound on queries waiting for a worker, across all sessions. Submissions
  /// beyond it are rejected with ResourceExhausted — backpressure the client
  /// can retry on.
  size_t max_queue_depth = 256;
  /// Per-session bound on *queued* queries (0 = no per-session bound). A
  /// session at its limit is rejected even while the global queue has room,
  /// keeping one bulk client from monopolising the admission queue.
  size_t max_queued_per_session = 0;

  /// Cross-query inference batching: the service owns a
  /// BatchingInferenceScheduler, and all workers' ComputeLayer calls flow
  /// through it, so co-scheduled queries fill each other's device batches
  /// (idle batch lanes cost the same as full ones under the GPU cost
  /// model). Per-query `QueryStats.inputs_run` stays exact — receipts
  /// charge each query its own inputs and its occupancy share of shared
  /// launches. Ignored for a single-worker service (no co-scheduled query
  /// could ever share a batch, so lingering would be pure latency).
  bool enable_cross_query_batching = true;
  /// How long the scheduler holds a partial batch open for other queries'
  /// inputs before flushing it. 0 flushes partial batches as soon as a
  /// dispatcher sees them — the right setting for latency-sensitive,
  /// lightly loaded services where co-arrivals are rare anyway.
  double batch_linger_seconds = 5e-4;
  /// Dispatcher threads running coalesced batches (each models one device
  /// stream). 0 = one per worker, preserving the device-wait overlap the
  /// unbatched service gets from its workers.
  int batch_dispatchers = 0;
};

/// \brief Concurrent query service over a DeepEverest engine: a fixed
/// thread pool consuming a bounded, session-aware admission queue.
///
/// Clients Submit() queries and receive futures. Admission applies
/// backpressure (global + per-session queue bounds); dispatch is round-robin
/// across sessions with queued work, FIFO within a session. Results are
/// identical to sequential execution on the same engine — the core it
/// drives (IndexManager, IqaCache, InferenceEngine, FileStore) is
/// concurrency-safe, and inference is deterministic, so only scheduling
/// order (and therefore per-query cache-hit counts) varies between runs.
/// Exact queries (theta == 1) run with tie-complete NTA termination, so
/// even cold-start races (where the build winner answers from the §4.6
/// activation scan) resolve value ties at the k-th boundary identically.
/// θ-approximate queries are guaranteed a valid θ-approximation, but on a
/// cold layer its exact members may vary with the build-race schedule (the
/// scan winner returns the exact answer; NTA losers may stop earlier).
///
/// With cross-query batching enabled (default), worker threads' inference
/// calls flow through a shared BatchingInferenceScheduler that merges
/// co-scheduled queries' inputs into shared device batches. Per-query stats
/// are receipt-metered and therefore exact under any interleaving.
///
/// The engine outlives the service; the service owns only its workers and
/// queue. All public methods are thread-safe.
class QueryService {
 public:
  /// Validates options and starts `num_workers` threads.
  static Result<std::unique_ptr<QueryService>> Create(
      core::DeepEverest* engine, const QueryServiceOptions& options);

  /// Blocks until in-flight queries finish; queued-but-unstarted queries
  /// fail with Cancelled.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `query`. Fails fast — without consuming a queue slot — with
  /// InvalidArgument (malformed query), ResourceExhausted (queue full or
  /// session at its limit; retry later), or FailedPrecondition (shutting
  /// down). The future resolves to the query's result or execution error.
  Result<std::future<Result<core::TopKResult>>> Submit(TopKQuery query);

  /// Submit + wait: the blocking convenience used by tests and examples.
  Result<core::TopKResult> Execute(TopKQuery query);

  /// Blocks until the queue is empty and no query is in flight.
  void Drain();

  /// Stops admission, cancels queued queries, finishes in-flight work, and
  /// joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Current counters, latency percentiles, utilization, and IQA shard
  /// hit rates.
  ServiceStats Snapshot() const;

  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    TopKQuery query;
    std::promise<Result<core::TopKResult>> promise;
    Stopwatch wait;  // started at admission
  };

  QueryService(core::DeepEverest* engine, const QueryServiceOptions& options);

  void WorkerLoop();
  Result<core::TopKResult> Run(const TopKQuery& query);

  core::DeepEverest* engine_;
  QueryServiceOptions options_;
  /// Shared cross-query batch scheduler; null when batching is disabled.
  /// Destroyed after Shutdown() has joined the workers, so no query can
  /// still be blocked inside it.
  std::unique_ptr<nn::BatchingInferenceScheduler> scheduler_;
  Stopwatch uptime_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers
  std::condition_variable idle_cv_;  // signals Drain()
  bool stopping_ = false;                            // guarded by mu_
  std::map<uint64_t, std::deque<Pending>> queues_;   // guarded by mu_
  std::deque<uint64_t> round_robin_;                 // guarded by mu_
  size_t queued_ = 0;                                // guarded by mu_
  size_t inflight_ = 0;                              // guarded by mu_

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> rejected_session_limit_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> busy_nanos_{0};
  LatencyHistogram latency_;

  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_QUERY_SERVICE_H_
