#ifndef DEEPEVEREST_SERVICE_QUERY_SERVICE_H_
#define DEEPEVEREST_SERVICE_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/qos.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"
#include "core/query.h"
#include "core/query_context.h"
#include "core/query_spec.h"
#include "nn/batch_scheduler.h"
#include "service/service_stats.h"

namespace deepeverest {
namespace service {

class DispatchPolicy;

// The service consumes the one canonical query type, core::QuerySpec —
// the same struct QL parsing and the JSON wire decoder produce. Its
// declarative half says what to retrieve; its serving envelope
// (session_id, qos, deadline_ms, weight, on_progress) is what this
// service schedules by. The progress sink is invoked on the executing
// worker thread after each NTA round, and all invocations happen-before
// the query's future resolves — the seam the HTTP front-end streams
// NDJSON progress events from.

struct QueryServiceOptions {
  /// Fixed-size worker pool executing queries against the shared engine.
  int num_workers = 4;
  /// Bound on queries waiting for a worker, across all sessions. Submissions
  /// beyond it are rejected with ResourceExhausted — backpressure the client
  /// can retry on.
  size_t max_queue_depth = 256;
  /// Per-session bound on *queued* queries (0 = no per-session bound). A
  /// session at its limit is rejected even while the global queue has room,
  /// keeping one bulk client from monopolising the admission queue.
  size_t max_queued_per_session = 0;

  /// Cross-query inference batching: the service owns a
  /// BatchingInferenceScheduler, and all workers' ComputeLayer calls flow
  /// through it, so co-scheduled queries fill each other's device batches
  /// (idle batch lanes cost the same as full ones under the GPU cost
  /// model). Per-query `QueryStats.inputs_run` stays exact — receipts
  /// charge each query its own inputs and its occupancy share of shared
  /// launches. Ignored for a single-worker service (no co-scheduled query
  /// could ever share a batch, so lingering would be pure latency).
  bool enable_cross_query_batching = true;
  /// How long the scheduler holds a partial batch open for other queries'
  /// inputs before flushing it. 0 flushes partial batches as soon as a
  /// dispatcher sees them — the right setting for latency-sensitive,
  /// lightly loaded services where co-arrivals are rare anyway.
  double batch_linger_seconds = 5e-4;
  /// Dispatcher threads running coalesced batches (each models one device
  /// stream). 0 = one per worker, preserving the device-wait overlap the
  /// unbatched service gets from its workers.
  int batch_dispatchers = 0;

  /// QoS-aware scheduling end to end: strict class priority at dispatch
  /// (interactive > batch > best_effort), earliest-deadline-first for
  /// deadline-carrying queries and weighted round-robin across sessions
  /// within a class, and per-class batch linger in the inference scheduler.
  /// Off restores the flat session round-robin and uniform linger of the
  /// pre-QoS service — the control arm of bench_service_qos. Deadline
  /// *enforcement* (queued-past-deadline rejection, mid-query abort) stays
  /// on either way; only prioritisation changes.
  bool enable_qos = true;
  /// Batch linger for interactive-class inference (see
  /// BatchSchedulerOptions::interactive_linger_seconds). The default 0
  /// means interactive requests flush immediately and seal any partial
  /// batch they join.
  double interactive_batch_linger_seconds = 0.0;
  /// Batch linger for best-effort-class inference (background work waits
  /// longest for full batches).
  double best_effort_batch_linger_seconds = 2e-3;

  /// Preemptive execution: a worker stepping a non-interactive query parks
  /// it between NTA rounds as soon as interactive work is waiting, runs the
  /// interactive query, and the parked query resumes later on any worker.
  /// Interactive tail latency becomes independent of bulk round length;
  /// results are unaffected (executions are checkpointed between rounds and
  /// bit-identical to an uninterrupted run). Effective only with the
  /// built-in QoS dispatch policy (`enable_qos` on, no custom
  /// `dispatch_policy`) — a custom policy defines its own ordering, and the
  /// park-and-switch handoff relies on strict class priority to guarantee
  /// the freed worker picks up the interactive query.
  bool enable_preemption = true;

  /// Pluggable dispatch ordering: when set, replaces the built-in policy
  /// that `enable_qos` would otherwise select. Only the admission-queue
  /// ordering is overridden — `enable_qos` still governs the batch
  /// scheduler's class-awareness (per-class linger, sealing) and the
  /// `qos_enabled` flag reported in ServiceStats, so a class-aware custom
  /// policy should keep `enable_qos = true`. The factory is invoked once
  /// at service creation; the policy is called only under the service lock
  /// (it needs no internal synchronisation). See DispatchPolicy.
  std::function<std::unique_ptr<DispatchPolicy>()> dispatch_policy;

  /// How many finished queries' traces are kept for `GET /v1/trace/<id>`
  /// (a fixed ring: newest wins). 0 keeps none. Every query is traced
  /// either way — spans are appended during execution regardless of whether
  /// anyone asks for them, which is what keeps the trace=0 overhead a
  /// handful of clock reads per query.
  size_t trace_ring_capacity = 128;
  /// Queries whose admission-to-completion latency reaches this emit one
  /// structured key=value log line with their top spans (through
  /// DE_LOG_WARNING, so a pluggable sink can capture it). <= 0 disables.
  double slow_query_seconds = 1.0;
};

/// \brief One admitted query: created at admission (Submit), owned by the
/// dispatch policy until a worker claims it. The context carries the
/// query's QoS class, absolute deadline, receipt, and scheduler plumbing
/// through every layer below the service.
///
/// Ownership protocol (what makes park/resume race-free): a PendingQuery —
/// and with it the single-owner `execution` state object — is owned by
/// exactly one party at any instant: the dispatch policy (under
/// QueryService::mu_) or the one worker that popped it. Handoffs happen
/// only by moving the struct into/out of the policy with mu_ held, so the
/// mutex orders every park → resume transition; no field here needs its own
/// lock, and a resuming worker (any worker) sees all of the previous
/// owner's writes.
struct PendingQuery {
  core::QuerySpec query;
  /// Shared with the Submission handle returned to the caller, so a client
  /// can Cancel() the query while the service still owns or runs it.
  std::shared_ptr<core::QueryContext> ctx;
  std::promise<Result<core::TopKResult>> promise;
  Stopwatch wait;  // started at admission
  /// The resumable execution. Null until a worker first dispatches the
  /// query; non-null exactly while the query is mid-flight — a parked
  /// query re-enters the dispatch queue carrying it, which is how a later
  /// (possibly different) worker distinguishes a resume from a fresh
  /// dispatch.
  std::unique_ptr<core::QueryExecution> execution;
  /// Trace span indices owned across park/resume episodes: the "execute"
  /// span opened at first dispatch (closed at completion) and the open
  /// "parked" span while parked (closed at resume); -1 = none.
  int execute_span = -1;
  int parked_span = -1;
  /// Accumulated time: admission-queue wait (set at first dispatch) and
  /// active execution across all episodes (parked gaps excluded).
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
};

/// \brief A submitted query's handle: the future resolving to its result
/// plus the control surface the network front-end needs.
struct Submission {
  std::future<Result<core::TopKResult>> result;
  /// The query's execution context. `context->Cancel()` requests
  /// cooperative cancellation from any thread: a queued query fails at
  /// dispatch, a running one aborts between NTA rounds, both with
  /// Cancelled (counted in ServiceStats.cancelled). The HTTP server calls
  /// this when a streaming client disconnects, so abandoned queries stop
  /// consuming inference budget.
  std::shared_ptr<core::QueryContext> context;
};

/// \brief Ordering of the admission queue: which admitted query a freed
/// worker runs next.
///
/// Implementations are plugged into the QueryService (see
/// QueryServiceOptions::dispatch_policy); every method is invoked with the
/// service mutex held, so policies need no locking of their own. The
/// service ships two: the flat session round-robin (PR 1 behaviour,
/// `enable_qos = false`) and the QoS policy — strict class priority, EDF
/// for deadline-carrying queries within a class, weighted round-robin
/// across the class's sessions otherwise.
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  virtual void Enqueue(PendingQuery pending) = 0;
  /// Next query to run. Only called when size() > 0.
  virtual PendingQuery PopNext() = 0;
  /// Queries currently queued (all classes and sessions).
  virtual size_t size() const = 0;
  /// Queued queries of `session` (admission enforces the per-session bound
  /// against this).
  virtual size_t QueuedForSession(uint64_t session) const = 0;
  /// Sessions with at least one queued query.
  virtual size_t ActiveSessions() const = 0;
  /// Removes and returns everything still queued (shutdown cancellation).
  virtual std::vector<PendingQuery> DrainAll() = 0;
};

/// \brief Concurrent query service over a DeepEverest engine: a fixed
/// thread pool consuming a bounded, session- and QoS-aware admission queue.
///
/// Clients Submit() queries and receive futures. Admission applies
/// backpressure (global + per-session queue bounds); dispatch follows the
/// configured DispatchPolicy — by default strict QoS class priority
/// (interactive > batch > best_effort) with EDF for deadline-carrying
/// queries and weighted round-robin across sessions within a class, FIFO
/// within a session. Every query gets a core::QueryContext at admission
/// (class, absolute deadline, cancellation, receipt) that is threaded
/// through the engine down to the batch scheduler. Results are
/// identical to sequential execution on the same engine — the core it
/// drives (IndexManager, IqaCache, InferenceEngine, FileStore) is
/// concurrency-safe, and inference is deterministic, so only scheduling
/// order (and therefore per-query cache-hit counts) varies between runs.
/// Exact queries (theta == 1) run with tie-complete NTA termination, so
/// even cold-start races (where the build winner answers from the §4.6
/// activation scan) resolve value ties at the k-th boundary identically.
/// θ-approximate queries are guaranteed a valid θ-approximation, but on a
/// cold layer its exact members may vary with the build-race schedule (the
/// scan winner returns the exact answer; NTA losers may stop earlier).
///
/// With cross-query batching enabled (default), worker threads' inference
/// calls flow through a shared BatchingInferenceScheduler that merges
/// co-scheduled queries' inputs into shared device batches. Per-query stats
/// are receipt-metered and therefore exact under any interleaving.
///
/// The engine outlives the service; the service owns only its workers and
/// queue. All public methods are thread-safe.
class QueryService {
 public:
  /// Validates options and starts `num_workers` threads.
  static Result<std::unique_ptr<QueryService>> Create(
      core::DeepEverest* engine, const QueryServiceOptions& options);

  /// Blocks until in-flight queries finish; queued-but-unstarted queries
  /// fail with Cancelled.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `spec`. Fails fast — without consuming a queue slot — with
  /// InvalidArgument (malformed spec, via the shared core::ValidateSpec
  /// choke point), ResourceExhausted (queue full or session at its limit;
  /// retry later), or FailedPrecondition (shutting down). The future
  /// resolves to the query's result or execution error.
  Result<std::future<Result<core::TopKResult>>> Submit(core::QuerySpec spec);

  /// Submit() plus the query's QueryContext, for callers that need
  /// per-query control after admission — mid-flight cancellation
  /// (`context->Cancel()`) and deadline inspection. The context stays valid
  /// for the handle's lifetime regardless of how the query ends.
  Result<Submission> SubmitWithControl(core::QuerySpec spec);

  /// Submit + wait: the blocking convenience used by tests and examples.
  Result<core::TopKResult> Execute(core::QuerySpec spec);

  /// Blocks until the queue is empty and no query is in flight.
  void Drain();

  /// Stops admission, cancels queued queries, finishes in-flight work, and
  /// joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Current counters, latency percentiles, utilization, and IQA shard
  /// hit rates.
  ServiceStats Snapshot() const;

  /// A recently finished query's trace, while it is still in the ring
  /// (see QueryServiceOptions::trace_ring_capacity); nullptr otherwise.
  std::shared_ptr<Trace> FindTrace(uint64_t trace_id) const {
    return trace_ring_.Find(trace_id);
  }

  /// Pushes an externally produced trace (e.g. an ingest apply pass) into
  /// the same ring, so `GET /v1/trace/<id>` serves it like a query trace.
  void RecordTrace(std::shared_ptr<Trace> trace) {
    if (trace != nullptr) trace_ring_.Push(std::move(trace));
  }

  const QueryServiceOptions& options() const { return options_; }

 private:
  /// Completion-side counters, kept overall and per QoS class (see the
  /// ServiceStats field docs for exact meanings).
  struct CompletionCounters {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> failed{0};
    std::atomic<int64_t> cancelled{0};
    std::atomic<int64_t> deadline_exceeded{0};
    std::atomic<int64_t> rejected_past_deadline{0};
    LatencyHistogram latency;
  };

  QueryService(core::DeepEverest* engine, const QueryServiceOptions& options);

  void WorkerLoop();
  /// Pops the next query with mu_ held, maintaining the preemption
  /// bookkeeping: decrements the interactive-waiting hint, and counts a
  /// resume when the popped query carries a parked execution.
  PendingQuery PopLocked() REQUIRES(mu_);
  /// Runs (or resumes) one popped query on the calling worker. Returns true
  /// when the query was parked and `*pending` now holds the interactive
  /// query the worker switched to — the caller loops and processes it;
  /// false when the query in `*pending` reached an outcome (already
  /// completed, counted, and its future resolved).
  bool ProcessPending(PendingQuery* pending);
  /// Parks `*pending` between rounds and switches `*pending` to the
  /// waiting interactive query, all under one mu_ hold (so the queue's
  /// size is unchanged and no wakeup is needed or lost). Returns false —
  /// park abandoned, keep stepping — when the hint was stale or the
  /// service is stopping. `episode_seconds` is the active stepping time of
  /// the current episode, charged before the handoff.
  bool TryParkAndSwitch(PendingQuery* pending, double episode_seconds);
  /// Outcome side of every executed-or-rejected query: closes the execute
  /// span, counts, records latency, emits the slow-query log, pushes the
  /// trace, resolves the future.
  void CompletePending(PendingQuery* pending, Result<core::TopKResult> result,
                       bool executed);
  /// Buckets one finished query into the right completion counter
  /// (overall + per-class). `executed` is false for queries rejected at
  /// dispatch because their deadline had already passed while queued.
  void CountOutcome(const Result<core::TopKResult>& result, QosClass qos,
                    bool executed);

  core::DeepEverest* engine_;
  QueryServiceOptions options_;
  /// Shared cross-query batch scheduler; null when batching is disabled.
  /// Destroyed after Shutdown() has joined the workers, so no query can
  /// still be blocked inside it.
  std::unique_ptr<nn::BatchingInferenceScheduler> scheduler_;
  Stopwatch uptime_;
  /// Recently finished queries' traces, newest-wins (backs FindTrace and
  /// the HTTP front-end's `GET /v1/trace/<id>`).
  TraceRing trace_ring_;

  /// Preemption active: option on AND the built-in QoS policy is in use
  /// (see QueryServiceOptions::enable_preemption).
  bool preemption_enabled_ = false;

  mutable common::Mutex mu_;
  common::CondVar work_cv_;  // signals workers
  common::CondVar idle_cv_;  // signals Drain()
  bool stopping_ GUARDED_BY(mu_) = false;
  std::unique_ptr<DispatchPolicy> policy_ GUARDED_BY(mu_);
  size_t inflight_ GUARDED_BY(mu_) = 0;
  /// Parked queries currently sitting in the dispatch queue (subtracted
  /// from its size() for queue-depth reporting; they already started).
  size_t parked_ GUARDED_BY(mu_) = 0;

  /// Interactive queries admitted but not yet picked up — the lock-free
  /// hint workers poll between NTA rounds to decide whether to park.
  /// Written only under mu_ (admission increments, PopLocked decrements);
  /// read relaxed outside it. A stale read is harmless: a false positive is
  /// re-validated under mu_ in TryParkAndSwitch, a false negative parks one
  /// round later.
  std::atomic<int> interactive_waiting_{0};

  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> rejected_session_limit_{0};
  std::atomic<int64_t> busy_nanos_{0};
  std::atomic<int64_t> parked_total_{0};
  std::atomic<int64_t> resumed_total_{0};
  std::atomic<int64_t> preemptions_{0};
  CompletionCounters totals_;
  std::array<CompletionCounters, kNumQosClasses> per_class_;

  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_QUERY_SERVICE_H_
