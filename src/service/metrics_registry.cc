#include "service/metrics_registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "service/engine_registry.h"
#include "service/query_service.h"
#include "service/service_stats.h"

namespace deepeverest {
namespace service {

namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Renders a sample value. Integral values print without a fraction (the
/// common case: counters); everything else gets enough digits to round-trip.
std::string FormatValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  // Prometheus exposition text is human-scraped, not round-tripped; 10
  // significant digits beat 17 for dashboard readability and nothing
  // downstream re-parses these into the bit-exact wire path.
  std::snprintf(buf, sizeof(buf), "%.10g", value);  // lint:allow(double-format)
  return buf;
}

}  // namespace

MetricsEmitter::Family* MetricsEmitter::FamilyFor(const std::string& name,
                                                  const std::string& help,
                                                  const char* type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    order_.push_back(name);
    Family family;
    family.help = help;
    family.type = type;
    it = families_.emplace(name, std::move(family)).first;
  }
  return &it->second;
}

void MetricsEmitter::AddSample(Family* family, const std::string& name,
                               const Labels& labels, const char* extra_key,
                               const std::string& extra_value, double value) {
  std::string line = name;
  if (!labels.empty() || extra_key != nullptr) {
    line += "{";
    bool first = true;
    for (const auto& [key, label_value] : labels) {
      if (!first) line += ",";
      first = false;
      line += key;
      line += "=\"";
      line += EscapeLabelValue(label_value);
      line += "\"";
    }
    if (extra_key != nullptr) {
      if (!first) line += ",";
      line += extra_key;
      line += "=\"";
      line += extra_value;  // always a number or +Inf; nothing to escape
      line += "\"";
    }
    line += "}";
  }
  line += " ";
  line += FormatValue(value);
  family->samples.push_back(std::move(line));
}

void MetricsEmitter::Counter(const std::string& name, const std::string& help,
                             const Labels& labels, double value) {
  AddSample(FamilyFor(name, help, "counter"), name, labels, nullptr, "",
            value);
}

void MetricsEmitter::Gauge(const std::string& name, const std::string& help,
                           const Labels& labels, double value) {
  AddSample(FamilyFor(name, help, "gauge"), name, labels, nullptr, "", value);
}

void MetricsEmitter::Histogram(
    const std::string& name, const std::string& help, const Labels& labels,
    const std::vector<std::pair<double, int64_t>>& cumulative_buckets,
    double sum, int64_t count) {
  Family* family = FamilyFor(name, help, "histogram");
  for (const auto& [upper, cumulative] : cumulative_buckets) {
    AddSample(family, name + "_bucket", labels, "le", FormatValue(upper),
              static_cast<double>(cumulative));
  }
  AddSample(family, name + "_bucket", labels, "le", "+Inf",
            static_cast<double>(count));
  AddSample(family, name + "_sum", labels, nullptr, "", sum);
  AddSample(family, name + "_count", labels, nullptr, "",
            static_cast<double>(count));
}

std::string MetricsEmitter::Render() const {
  std::string out;
  for (const std::string& name : order_) {
    const Family& family = families_.at(name);
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    out += family.type;
    out += "\n";
    for (const std::string& sample : family.samples) {
      out += sample;
      out += "\n";
    }
  }
  return out;
}

int64_t MetricsRegistry::AddCollector(Collector collector) {
  common::MutexLock lock(&mu_);
  const int64_t handle = next_handle_++;
  collectors_.emplace_back(handle, std::move(collector));
  return handle;
}

void MetricsRegistry::RemoveCollector(int64_t handle) {
  common::MutexLock lock(&mu_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [handle](const std::pair<int64_t, Collector>& entry) {
                       return entry.first == handle;
                     }),
      collectors_.end());
}

std::string MetricsRegistry::RenderPrometheusText() const {
  MetricsEmitter emitter;
  {
    common::MutexLock lock(&mu_);
    for (const auto& [handle, collector] : collectors_) {
      collector(&emitter);
    }
  }
  return emitter.Render();
}

namespace {

/// Coarsens the 128-bucket LatencyHistogram to every 8th boundary (15
/// finite `le` bounds + `+Inf`) — plenty of resolution for a dashboard at
/// an eighth of the exposition size.
std::vector<std::pair<double, int64_t>> CoarseLatencyBuckets(
    const std::vector<int64_t>& buckets) {
  std::vector<std::pair<double, int64_t>> out;
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if ((i + 1) % 8 == 0 && i + 1 < buckets.size()) {
      out.emplace_back(LatencyHistogram::BucketUpperSeconds(static_cast<int>(i)),
                       cumulative);
    }
  }
  return out;
}

void CollectModelMetrics(MetricsEmitter* emitter, const std::string& model,
                         QueryService* service) {
  const ServiceStats stats = service->Snapshot();
  const MetricsEmitter::Labels by_model = {{"model", model}};

  emitter->Counter("deepeverest_queries_submitted_total",
                   "Queries admitted to the service queue.", by_model,
                   static_cast<double>(stats.submitted));
  emitter->Counter("deepeverest_queries_completed_total",
                   "Queries executed to an OK result.", by_model,
                   static_cast<double>(stats.completed));
  emitter->Counter("deepeverest_queries_failed_total",
                   "Queries that executed but returned an error.", by_model,
                   static_cast<double>(stats.failed));
  emitter->Counter("deepeverest_queries_cancelled_total",
                   "Queries cancelled before or during execution.", by_model,
                   static_cast<double>(stats.cancelled));
  emitter->Counter("deepeverest_queries_deadline_exceeded_total",
                   "Queries aborted mid-execution by their deadline.",
                   by_model, static_cast<double>(stats.deadline_exceeded));
  emitter->Counter(
      "deepeverest_queries_rejected_past_deadline_total",
      "Queries whose deadline expired while queued (never executed).",
      by_model, static_cast<double>(stats.rejected_past_deadline));
  emitter->Counter("deepeverest_queries_rejected_queue_full_total",
                   "Submissions rejected because the admission queue was "
                   "full.",
                   by_model, static_cast<double>(stats.rejected_queue_full));
  emitter->Counter(
      "deepeverest_queries_rejected_session_limit_total",
      "Submissions rejected by the per-session queued-query bound.", by_model,
      static_cast<double>(stats.rejected_session_limit));

  emitter->Counter("deepeverest_queries_parked_total",
                   "Park transitions: non-interactive queries preempted "
                   "between NTA rounds to free a worker for interactive "
                   "work.",
                   by_model, static_cast<double>(stats.parked_total));
  emitter->Counter("deepeverest_queries_resumed_total",
                   "Resume transitions: parked queries picked back up by a "
                   "worker.",
                   by_model, static_cast<double>(stats.resumed_total));
  emitter->Counter("deepeverest_preemptions_total",
                   "Park-and-switch events where a worker handed itself "
                   "directly to a waiting interactive query.",
                   by_model, static_cast<double>(stats.preemptions));

  emitter->Gauge("deepeverest_queue_depth",
                 "Admitted queries waiting for a worker.", by_model,
                 static_cast<double>(stats.queue_depth));
  emitter->Gauge("deepeverest_queries_inflight",
                 "Queries currently executing.", by_model,
                 static_cast<double>(stats.inflight));
  emitter->Gauge("deepeverest_queries_parked",
                 "Queries preempted mid-flight, waiting to be resumed.",
                 by_model, static_cast<double>(stats.parked));
  emitter->Gauge("deepeverest_active_sessions",
                 "Sessions with queued work.", by_model,
                 static_cast<double>(stats.active_sessions));
  emitter->Gauge("deepeverest_worker_utilization",
                 "Worker-pool busy fraction since service start, in [0, 1].",
                 by_model, stats.worker_utilization);
  emitter->Gauge("deepeverest_service_uptime_seconds",
                 "Seconds since this model's service started.", by_model,
                 stats.uptime_seconds);

  for (int c = 0; c < kNumQosClasses; ++c) {
    const QosClassStats& cls = stats.per_class[static_cast<size_t>(c)];
    MetricsEmitter::Labels labels = by_model;
    labels.emplace_back("class", QosClassName(static_cast<QosClass>(c)));
    int64_t count = 0;
    for (int64_t n : cls.latency_buckets) count += n;
    emitter->Histogram("deepeverest_query_latency_seconds",
                       "Admission-to-completion latency of executed queries.",
                       labels, CoarseLatencyBuckets(cls.latency_buckets),
                       cls.approx_latency_sum_seconds, count);
  }

  if (!stats.iqa_shards.empty()) {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    uint64_t size_bytes = 0;
    uint64_t capacity_bytes = 0;
    for (const auto& shard : stats.iqa_shards) {
      hits += shard.hits;
      misses += shard.misses;
      evictions += shard.evictions;
      size_bytes += shard.size_bytes;
      capacity_bytes += shard.capacity_bytes;
    }
    emitter->Counter("deepeverest_iqa_hits_total",
                     "IQA activation-cache hits, summed over shards.",
                     by_model, static_cast<double>(hits));
    emitter->Counter("deepeverest_iqa_misses_total",
                     "IQA activation-cache misses, summed over shards.",
                     by_model, static_cast<double>(misses));
    emitter->Counter("deepeverest_iqa_evictions_total",
                     "IQA activation-cache evictions, summed over shards.",
                     by_model, static_cast<double>(evictions));
    emitter->Gauge("deepeverest_iqa_cache_bytes",
                   "Bytes of cached activations across shards.", by_model,
                   static_cast<double>(size_bytes));
    emitter->Gauge("deepeverest_iqa_cache_capacity_bytes",
                   "Configured IQA cache capacity across shards.", by_model,
                   static_cast<double>(capacity_bytes));
  }

  if (stats.batching_enabled) {
    const nn::BatchSchedulerStats& b = stats.batching;
    emitter->Counter("deepeverest_batches_dispatched_total",
                     "Device batches launched by the batching scheduler.",
                     by_model, static_cast<double>(b.batches_dispatched));
    emitter->Counter("deepeverest_batch_inputs_dispatched_total",
                     "Inputs carried by those batches.", by_model,
                     static_cast<double>(b.inputs_dispatched));
    emitter->Counter("deepeverest_shared_batches_total",
                     "Batches that served more than one query.", by_model,
                     static_cast<double>(b.shared_batches));
    emitter->Counter("deepeverest_batch_linger_flushes_total",
                     "Partial batches flushed by the linger window.",
                     by_model, static_cast<double>(b.linger_flushes));
    emitter->Counter(
        "deepeverest_batches_sealed_by_interactive_total",
        "Partial batches launched early for an interactive request.",
        by_model, static_cast<double>(b.sealed_by_interactive));
    emitter->Gauge("deepeverest_batch_fill_ratio",
                   "Mean device-batch occupancy since start, in [0, 1].",
                   by_model, b.AverageFill(stats.batch_size));

    std::vector<std::pair<double, int64_t>> fill_buckets;
    int64_t cumulative = 0;
    // The +Inf bucket (== count) is appended by Histogram(); the 8th
    // bucket's bound 1.0 stays finite and explicit.
    for (int i = 0; i < nn::BatchSchedulerStats::kFillBuckets; ++i) {
      cumulative += b.fill_histogram[static_cast<size_t>(i)];
      fill_buckets.emplace_back(
          static_cast<double>(i + 1) /
              static_cast<double>(nn::BatchSchedulerStats::kFillBuckets),
          cumulative);
    }
    const double fill_sum =
        stats.batch_size > 0 ? static_cast<double>(b.inputs_dispatched) /
                                   static_cast<double>(stats.batch_size)
                             : 0.0;
    emitter->Histogram("deepeverest_batch_fill_fraction",
                       "Per-batch occupancy fraction at dispatch.", by_model,
                       fill_buckets, fill_sum, b.batches_dispatched);
  }
}

}  // namespace

int64_t RegisterServiceMetrics(MetricsRegistry* metrics,
                               const EngineRegistry* models) {
  return metrics->AddCollector([models](MetricsEmitter* emitter) {
    for (const std::string& name : models->ModelNames()) {
      QueryService* service = models->Find(name);
      if (service != nullptr) CollectModelMetrics(emitter, name, service);
    }
  });
}

// ---------------------------------------------------------------------------
// Exposition-format validator
// ---------------------------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

bool ParseSampleValue(const std::string& text, double* value) {
  if (text == "+Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

Status ParseSampleLine(const std::string& line, size_t line_no,
                       ParsedSample* out) {
  auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   what + ": " + line);
  };
  size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  out->name = line.substr(0, pos);
  if (!ValidMetricName(out->name)) return fail("bad metric name");
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      size_t eq = line.find('=', pos);
      if (eq == std::string::npos) return fail("label without '='");
      const std::string label = line.substr(pos, eq - pos);
      if (!ValidLabelName(label)) return fail("bad label name");
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        return fail("label value not quoted");
      }
      std::string value;
      size_t i = eq + 2;
      for (; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) return fail("dangling escape");
          const char next = line[i + 1];
          if (next == '\\' || next == '"') {
            value.push_back(next);
          } else if (next == 'n') {
            value.push_back('\n');
          } else {
            return fail("bad escape in label value");
          }
          ++i;
        } else {
          value.push_back(line[i]);
        }
      }
      if (i >= line.size()) return fail("unterminated label value");
      out->labels.emplace_back(label, value);
      pos = i + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      return fail("unterminated label set");
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return fail("missing value separator");
  }
  ++pos;
  // Optional-timestamp syntax is not emitted here; a second token fails.
  const std::string value_text = line.substr(pos);
  if (value_text.find(' ') != std::string::npos) {
    return fail("unexpected trailing token");
  }
  if (!ParseSampleValue(value_text, &out->value)) {
    return fail("bad sample value");
  }
  return Status::OK();
}

/// The family a sample belongs to: histogram series names carry a
/// _bucket/_sum/_count suffix on top of the family name.
std::string FamilyOf(
    const std::string& name,
    const std::map<std::string, std::string>& family_types) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::string(suffix).size();
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      const std::string base = name.substr(0, name.size() - len);
      auto it = family_types.find(base);
      if (it != family_types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

}  // namespace

Status ValidatePrometheusText(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty exposition");
  if (text.back() != '\n') {
    return Status::InvalidArgument("exposition must end with a newline");
  }
  std::map<std::string, std::string> family_types;  // family -> TYPE
  std::map<std::string, std::string> family_help;
  // Histogram bucket series, keyed by family + label set (minus `le`):
  // the previous cumulative count and bound, plus whether +Inf was seen.
  struct BucketSeries {
    double last_bound = -std::numeric_limits<double>::infinity();
    double last_value = 0.0;
    bool saw_inf = false;
    double inf_value = 0.0;
  };
  std::map<std::string, BucketSeries> buckets;
  std::map<std::string, double> histogram_counts;

  size_t line_no = 0;
  size_t start = 0;
  while (start < text.size()) {
    ++line_no;
    const size_t end = text.find('\n', start);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP <name> <text>" / "# TYPE <name> <type>"; other comments
      // pass through.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line.rfind("# TYPE ", 0) == 0;
        const size_t name_start = 7;
        const size_t name_end = line.find(' ', name_start);
        if (name_end == std::string::npos) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": truncated " +
              (is_type ? "TYPE" : "HELP") + " line: " + line);
        }
        const std::string name = line.substr(name_start, name_end - name_start);
        if (!ValidMetricName(name)) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad metric name in comment: " +
                                         line);
        }
        auto& seen = is_type ? family_types : family_help;
        if (seen.count(name) != 0) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": duplicate " +
                                         (is_type ? "TYPE" : "HELP") +
                                         " for " + name);
        }
        const std::string rest = line.substr(name_end + 1);
        if (is_type && rest != "counter" && rest != "gauge" &&
            rest != "histogram" && rest != "summary" && rest != "untyped") {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": unknown TYPE: " + rest);
        }
        seen[name] = rest;
      }
      continue;
    }

    ParsedSample sample;
    DE_RETURN_NOT_OK(ParseSampleLine(line, line_no, &sample));
    const std::string family = FamilyOf(sample.name, family_types);
    auto type_it = family_types.find(family);
    if (type_it == family_types.end()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": sample before # TYPE for family " +
                                     family);
    }

    if (type_it->second == "histogram" &&
        sample.name == family + "_bucket") {
      std::string series_key = family;
      double bound = 0.0;
      bool have_le = false;
      for (const auto& [key, value] : sample.labels) {
        if (key == "le") {
          have_le = true;
          if (!ParseSampleValue(value, &bound)) {
            return Status::InvalidArgument("line " + std::to_string(line_no) +
                                           ": bad le bound: " + value);
          }
        } else {
          series_key += "|" + key + "=" + value;
        }
      }
      if (!have_le) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": histogram bucket without le");
      }
      BucketSeries& series = buckets[series_key];
      if (bound <= series.last_bound) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": le bounds not increasing");
      }
      if (sample.value < series.last_value) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": histogram buckets not cumulative");
      }
      series.last_bound = bound;
      series.last_value = sample.value;
      if (std::isinf(bound)) {
        series.saw_inf = true;
        series.inf_value = sample.value;
      }
    } else if (type_it->second == "histogram" &&
               sample.name == family + "_count") {
      std::string series_key = family;
      for (const auto& [key, value] : sample.labels) {
        series_key += "|" + key + "=" + value;
      }
      histogram_counts[series_key] = sample.value;
    }
  }

  for (const auto& [series_key, series] : buckets) {
    if (!series.saw_inf) {
      return Status::InvalidArgument("histogram series " + series_key +
                                     " has no +Inf bucket");
    }
    auto count_it = histogram_counts.find(series_key);
    if (count_it != histogram_counts.end() &&
        count_it->second != series.inf_value) {
      return Status::InvalidArgument("histogram series " + series_key +
                                     ": _count disagrees with +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace service
}  // namespace deepeverest
