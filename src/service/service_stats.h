#ifndef DEEPEVEREST_SERVICE_SERVICE_STATS_H_
#define DEEPEVEREST_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/qos.h"
#include "core/iqa_cache.h"
#include "nn/batch_scheduler.h"

namespace deepeverest {
namespace service {

/// \brief Lock-free latency histogram with geometric buckets.
///
/// 128 buckets spanning 1 µs .. ~10^4 s with ratio ~1.2 give percentile
/// estimates within ±10% — plenty for a p50/p99 dashboard — while Record()
/// is a single relaxed fetch_add, cheap enough for every query.
class LatencyHistogram {
 public:
  void Record(double seconds) {
    buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Approximate latency at quantile `q` in [0, 1]; 0 when empty.
  double PercentileSeconds(double q) const {
    const int64_t total = count();
    if (total <= 0) return 0.0;
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(total - 1));
    for (int i = 0; i < kBuckets; ++i) {
      rank -= buckets_[i].load(std::memory_order_relaxed);
      if (rank < 0) return BucketMidSeconds(i);
    }
    return BucketMidSeconds(kBuckets - 1);
  }

  /// Folds `other` into this histogram (relaxed adds, safe against
  /// concurrent Record on either side). Used to aggregate per-worker or
  /// per-model histograms into one exposition series.
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      const int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  static constexpr int num_buckets() { return kBuckets; }
  int64_t BucketCount(int idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }
  /// Exclusive upper edge of bucket `idx` — the `le` bound when the
  /// histogram is exported in Prometheus text format. The last bucket holds
  /// everything clamped from above, so its logical bound is +infinity.
  static double BucketUpperSeconds(int idx) {
    if (idx >= kBuckets - 1) {
      return std::numeric_limits<double>::infinity();
    }
    return kMinSeconds * std::exp(static_cast<double>(idx + 1) * kLogRatio);
  }
  /// Approximate sum of all recorded values (midpoint rule), for the
  /// Prometheus `_sum` series.
  double ApproxSumSeconds() const {
    double sum = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
      const int64_t n = buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) sum += static_cast<double>(n) * BucketMidSeconds(i);
    }
    return sum;
  }

 private:
  static constexpr int kBuckets = 128;
  static constexpr double kMinSeconds = 1e-6;
  // kBuckets geometric steps cover 10 decades: ratio = 10^(10/127).
  static constexpr double kLogRatio = 10.0 / 127.0 * 2.302585092994046;

  static int BucketFor(double seconds) {
    if (!(seconds > kMinSeconds)) return 0;
    const int idx = static_cast<int>(std::log(seconds / kMinSeconds) /
                                     kLogRatio);
    return idx >= kBuckets ? kBuckets - 1 : idx;
  }
  static double BucketMidSeconds(int idx) {
    return kMinSeconds * std::exp((static_cast<double>(idx) + 0.5) *
                                  kLogRatio);
  }

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
};

/// \brief Per-QoS-class slice of the service counters; indexed by
/// QosIndex() in ServiceStats::per_class. Counter meanings match the
/// top-level fields (which are the sums across classes).
struct QosClassStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected_past_deadline = 0;

  // Admission-to-completion latency of this class's *executed* queries.
  double p50_latency_seconds = 0.0;
  double p90_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  /// Raw histogram bucket counts behind those percentiles
  /// (LatencyHistogram::num_buckets() entries; bucket i's upper edge is
  /// LatencyHistogram::BucketUpperSeconds(i)) — what /v1/metrics exports as
  /// the per-class latency histogram.
  std::vector<int64_t> latency_buckets;
  /// Midpoint-rule estimate of the summed latency (Prometheus `_sum`).
  double approx_latency_sum_seconds = 0.0;

  /// Mean occupancy of the device batches this class's inference rode in
  /// (see BatchSchedulerClassStats::AverageFill); 0 when batching is off.
  double batch_fill = 0.0;
};

/// \brief Point-in-time snapshot of a QueryService, cheap enough to poll.
struct ServiceStats {
  // Admission.
  int64_t submitted = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_session_limit = 0;

  // Completion. Every submitted (admitted) query ends in exactly one of
  // these four buckets:
  //  - `completed`: executed and returned OK.
  //  - `failed`: executed but returned a non-OK status other than
  //    DeadlineExceeded/Cancelled — a genuine execution error (bad layer,
  //    I/O failure, ...).
  //  - `cancelled`: cancelled rather than answered — queries still queued
  //    at Shutdown(), and queries whose `Submission::context->Cancel()`
  //    was called (directly, or by the HTTP server when a streaming
  //    client disconnects): a queued one fails at dispatch without
  //    running, a running one aborts cooperatively between NTA rounds.
  //  - `deadline_exceeded` + `rejected_past_deadline`: the query's deadline
  //    expired. `rejected_past_deadline` counts queries whose deadline
  //    passed while still queued — they are rejected at dispatch without
  //    running any inference (no worker time is spent on work nobody is
  //    waiting for). `deadline_exceeded` counts queries that started
  //    executing and aborted cooperatively between NTA rounds.
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected_past_deadline = 0;

  // Live state.
  size_t queue_depth = 0;
  size_t inflight = 0;
  size_t active_sessions = 0;  // sessions with queued work
  /// Queries preempted mid-flight, currently waiting to be resumed. Parked
  /// queries sit in the dispatch queue but are NOT part of `queue_depth`
  /// (they already started) nor `inflight` (no worker is stepping them).
  size_t parked = 0;

  // Preemptive execution. A bulk/best-effort query may be parked between
  // NTA rounds when interactive work arrives and resumed later on any
  // worker; results are unaffected (bit-identical to an uninterrupted run).
  int64_t parked_total = 0;   // park transitions since startup
  int64_t resumed_total = 0;  // resume transitions since startup
  /// Park-and-switch events where a worker handed itself directly to an
  /// interactive query (currently always equal to parked_total; kept
  /// separate so future park reasons don't overload the meaning).
  int64_t preemptions = 0;

  // Latency (admission-to-completion), approximate percentiles.
  double p50_latency_seconds = 0.0;
  double p90_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  /// Raw overall histogram buckets (see QosClassStats::latency_buckets).
  std::vector<int64_t> latency_buckets;
  double approx_latency_sum_seconds = 0.0;

  /// QoS: whether class-aware dispatch/batching is on, and the per-class
  /// counter slices (always populated; with QoS off every query still
  /// records under its declared class).
  bool qos_enabled = false;
  std::array<QosClassStats, kNumQosClasses> per_class{};

  // Worker pool.
  int num_workers = 0;
  double uptime_seconds = 0.0;
  double worker_busy_seconds = 0.0;  // summed across workers
  /// busy / (uptime * workers), in [0, 1].
  double worker_utilization = 0.0;

  /// Per-shard IQA cache counters; empty when the engine runs without IQA.
  std::vector<core::IqaCache::ShardSnapshot> iqa_shards;

  /// Cross-query inference batching. When enabled, concurrent queries'
  /// ComputeLayer calls coalesce into shared device batches; `batching`
  /// reports how full those batches ran (see
  /// BatchSchedulerStats::AverageFill) and how often batches were shared
  /// across queries. All zeros when batching is off.
  bool batching_enabled = false;
  int batch_size = 0;  // device batch capacity the scheduler fills to
  nn::BatchSchedulerStats batching;
};

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_SERVICE_STATS_H_
