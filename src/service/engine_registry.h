#ifndef DEEPEVEREST_SERVICE_ENGINE_REGISTRY_H_
#define DEEPEVEREST_SERVICE_ENGINE_REGISTRY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "service/ingest_sink.h"
#include "service/query_service.h"

namespace deepeverest {
namespace service {

/// \brief Maps model names to the QueryService serving each model's
/// engine, so one network front-end can front several models: the wire
/// protocol's `model` field *routes* (instead of 404-matching against a
/// single served name), `GET /v1/models` lists this registry, and
/// `/v1/stats` reports one section per entry.
///
/// Each entry is a fully independent serving stack — its own DeepEverest
/// engine, worker pool, admission queue, batch scheduler, and stats — so
/// one model's backlog never blocks another's and per-model stats need no
/// disaggregation. The registry does not own the services (consistent with
/// QueryServer not owning its service); everything registered must outlive
/// it. Registration order is preserved: the first entry is the default a
/// request without a `model` field routes to.
///
/// Thread-safe: registration and lookup may race (lookups are served under
/// a mutex; the returned service pointer stays valid because entries are
/// never removed).
class EngineRegistry {
 public:
  EngineRegistry() = default;
  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  /// Registers `service` under `name`. InvalidArgument on an empty name or
  /// null service, AlreadyExists on a duplicate name.
  Status Register(const std::string& name, QueryService* service);

  /// The service for `name`; nullptr when not registered.
  QueryService* Find(const std::string& name) const;

  /// The default service (first registered); nullptr while empty.
  QueryService* DefaultService() const;

  /// The default model's name; empty while the registry is.
  std::string default_model() const;

  /// Registered model names, in registration order.
  std::vector<std::string> ModelNames() const;

  /// Attaches the ingest pipeline serving `name`'s dataset and indexes.
  /// The model must already be registered; the sink (not owned) must
  /// outlive the registry. NotFound when the model is not registered,
  /// AlreadyExists when a sink is already attached.
  Status AttachIngest(const std::string& name, IngestSink* sink);

  /// The ingest sink for `name`; nullptr when the model is not registered
  /// or serves queries only (no ingest attached).
  IngestSink* FindIngest(const std::string& name) const;

  size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    std::string name;
    QueryService* service = nullptr;
    IngestSink* ingest = nullptr;  // optional
  };

  mutable common::Mutex mu_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_ENGINE_REGISTRY_H_
