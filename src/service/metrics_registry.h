#ifndef DEEPEVEREST_SERVICE_METRICS_REGISTRY_H_
#define DEEPEVEREST_SERVICE_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace deepeverest {
namespace service {

class EngineRegistry;

/// \brief Builder for one Prometheus text-format scrape.
///
/// Collectors receive an emitter and publish their current values into it;
/// the emitter groups samples into metric families (one `# HELP`/`# TYPE`
/// header per family even when several models emit the same metric with
/// different labels) and renders the Prometheus text exposition format,
/// version 0.0.4.
class MetricsEmitter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void Counter(const std::string& name, const std::string& help,
               const Labels& labels, double value);
  void Gauge(const std::string& name, const std::string& help,
             const Labels& labels, double value);
  /// One histogram series. `cumulative_buckets` are (upper_bound,
  /// cumulative_count) pairs in increasing bound order — already cumulative,
  /// as the text format requires; the `le="+Inf"` bucket (= `count`) and the
  /// `_sum`/`_count` series are appended automatically.
  void Histogram(const std::string& name, const std::string& help,
                 const Labels& labels,
                 const std::vector<std::pair<double, int64_t>>&
                     cumulative_buckets,
                 double sum, int64_t count);

  std::string Render() const;

 private:
  struct Family {
    std::string help;
    const char* type = "";
    std::vector<std::string> samples;  // fully rendered lines
  };

  Family* FamilyFor(const std::string& name, const std::string& help,
                    const char* type);
  void AddSample(Family* family, const std::string& name, const Labels& labels,
                 const char* extra_key, const std::string& extra_value,
                 double value);

  std::vector<std::string> order_;  // family names in first-seen order
  std::map<std::string, Family> families_;
};

/// \brief The process's scrape surface: a registry of metric collectors,
/// rendered on demand by `GET /v1/metrics`.
///
/// Collection is pull-based: nothing is stored between scrapes. Subsystems
/// register a collector callback that reads their live counters
/// (ServiceStats snapshots, scheduler fill histograms, HTTP server stats)
/// and publishes them into the emitter; RenderPrometheusText runs every
/// collector under the registry lock. Collectors capture raw pointers into
/// their subsystems, so whoever registers one must remove it (handle from
/// AddCollector) before the subsystem dies — QueryServer does this in
/// Shutdown.
class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsEmitter*)>;

  /// Registers `collector`; returns a handle for RemoveCollector.
  int64_t AddCollector(Collector collector);
  void RemoveCollector(int64_t handle);

  /// Runs every collector and renders the combined scrape.
  std::string RenderPrometheusText() const;

 private:
  mutable common::Mutex mu_;
  int64_t next_handle_ GUARDED_BY(mu_) = 1;
  std::vector<std::pair<int64_t, Collector>> collectors_ GUARDED_BY(mu_);
};

/// Registers the standard per-model collector: every model in `models` gets
/// its ServiceStats published as `deepeverest_*` families with a
/// `model` label — query outcome counters, queue/inflight gauges, per-class
/// latency histograms, IQA cache hit rates, and the batch scheduler's fill
/// histogram. Returns the AddCollector handle. Both registries must outlive
/// the collector.
int64_t RegisterServiceMetrics(MetricsRegistry* metrics,
                               const EngineRegistry* models);

/// Validates `text` against the Prometheus text exposition format: sample
/// syntax and name/label charsets, a preceding `# TYPE` for every sample's
/// family, and per-series cumulative monotonicity + `+Inf` bucket for
/// histograms. Used by tests and the e2e client to regression-lock the
/// /v1/metrics output; returns the first violation found.
Status ValidatePrometheusText(const std::string& text);

}  // namespace service
}  // namespace deepeverest

#endif  // DEEPEVEREST_SERVICE_METRICS_REGISTRY_H_
