#include "service/engine_registry.h"

namespace deepeverest {
namespace service {

Status EngineRegistry::Register(const std::string& name,
                                QueryService* service) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (service == nullptr) {
    return Status::InvalidArgument("service is required");
  }
  common::MutexLock lock(&mu_);
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return Status::AlreadyExists("model '" + name +
                                   "' is already registered");
    }
  }
  Entry entry;
  entry.name = name;
  entry.service = service;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

QueryService* EngineRegistry::Find(const std::string& name) const {
  common::MutexLock lock(&mu_);
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.service;
  }
  return nullptr;
}

QueryService* EngineRegistry::DefaultService() const {
  common::MutexLock lock(&mu_);
  return entries_.empty() ? nullptr : entries_.front().service;
}

std::string EngineRegistry::default_model() const {
  common::MutexLock lock(&mu_);
  return entries_.empty() ? std::string() : entries_.front().name;
}

std::vector<std::string> EngineRegistry::ModelNames() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    names.push_back(entry.name);
  }
  return names;
}

Status EngineRegistry::AttachIngest(const std::string& name, IngestSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("ingest sink is required");
  }
  common::MutexLock lock(&mu_);
  for (Entry& entry : entries_) {
    if (entry.name != name) continue;
    if (entry.ingest != nullptr) {
      return Status::AlreadyExists("model '" + name +
                                   "' already has an ingest sink");
    }
    entry.ingest = sink;
    return Status::OK();
  }
  return Status::NotFound("model '" + name + "' is not registered");
}

IngestSink* EngineRegistry::FindIngest(const std::string& name) const {
  common::MutexLock lock(&mu_);
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.ingest;
  }
  return nullptr;
}

size_t EngineRegistry::size() const {
  common::MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace service
}  // namespace deepeverest
