#include "service/engine_registry.h"

namespace deepeverest {
namespace service {

Status EngineRegistry::Register(const std::string& name,
                                QueryService* service) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (service == nullptr) {
    return Status::InvalidArgument("service is required");
  }
  common::MutexLock lock(&mu_);
  for (const auto& [existing, unused] : entries_) {
    (void)unused;
    if (existing == name) {
      return Status::AlreadyExists("model '" + name +
                                   "' is already registered");
    }
  }
  entries_.emplace_back(name, service);
  return Status::OK();
}

QueryService* EngineRegistry::Find(const std::string& name) const {
  common::MutexLock lock(&mu_);
  for (const auto& [entry_name, service] : entries_) {
    if (entry_name == name) return service;
  }
  return nullptr;
}

QueryService* EngineRegistry::DefaultService() const {
  common::MutexLock lock(&mu_);
  return entries_.empty() ? nullptr : entries_.front().second;
}

std::string EngineRegistry::default_model() const {
  common::MutexLock lock(&mu_);
  return entries_.empty() ? std::string() : entries_.front().first;
}

std::vector<std::string> EngineRegistry::ModelNames() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, service] : entries_) {
    (void)service;
    names.push_back(name);
  }
  return names;
}

size_t EngineRegistry::size() const {
  common::MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace service
}  // namespace deepeverest
