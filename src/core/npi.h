#ifndef DEEPEVEREST_CORE_NPI_H_
#define DEEPEVEREST_CORE_NPI_H_

#include <cstdint>
#include <vector>

#include "common/bit_pack.h"
#include "common/result.h"
#include "common/serde.h"
#include "storage/activation_store.h"

namespace deepeverest {
namespace core {

/// \brief How a neuron's activation range is split into partitions.
enum class PartitionScheme {
  /// Equal input counts per partition (DeepEverest's choice, §4.3: adapts
  /// to the heavy skew of activation distributions).
  kEquiDepth,
  /// Equal activation-value ranges per partition. Implemented for the
  /// ablation benchmark that validates the paper's equi-depth choice; skewed
  /// distributions concentrate most inputs into a few partitions, which
  /// destroys NTA's pruning.
  kEquiWidth,
};

/// \brief Per-layer index configuration.
struct LayerIndexConfig {
  /// Total number of partitions per neuron (including partition 0). Powers
  /// of two use the bit-packed PID lanes fully (paper §4.7.2).
  int num_partitions = 16;
  /// Fraction of inputs whose (activation, inputID) pairs are materialised
  /// in the Maximum Activation Index; they become partition 0 (§4.7.1).
  /// 0 disables MAI. Requires kEquiDepth.
  double mai_ratio = 0.0;
  PartitionScheme scheme = PartitionScheme::kEquiDepth;
};

/// \brief One Maximum Activation Index entry.
struct MaiEntry {
  float activation = 0.0f;
  uint32_t input_id = 0;
};

/// \brief Neural Partition Index + Maximum Activation Index for one layer.
///
/// For every neuron the inputs are range-partitioned by activation value
/// into equi-depth partitions; partition 0 holds the largest activations.
/// Physically this is one bit-packed PID per (neuron, input) —
/// ceil(log2(nPartitions)) bits — plus float32 lower/upper bounds per
/// (neuron, partition), plus (optionally) the MAI: the top `mai_ratio`
/// fraction of (activation, inputID) pairs per neuron, which then *is*
/// partition 0. See paper sections 4.3 and 4.7.1.
///
/// Immutable once built; safe to share across concurrent queries.
class LayerIndex {
 public:
  /// Builds the index from a fully materialised activation matrix.
  /// Clamps num_partitions so no non-MAI partition is empty.
  static Result<LayerIndex> Build(const storage::LayerActivationMatrix& acts,
                                  const LayerIndexConfig& config);

  /// Incremental insert (paper §4.6 extended to a growing dataset): returns a
  /// NEW index covering the original inputs plus `delta`, whose rows are the
  /// activations of input ids [num_inputs, num_inputs + delta.num_inputs).
  /// The original index is unchanged, so in-flight queries pinned to it stay
  /// consistent. New inputs that beat a neuron's MAI minimum displace it
  /// (the evicted entry is re-housed in a regular partition); all others are
  /// routed to the containing partition, or the nearest one with its bound
  /// extended. Partitions stay disjoint and ordered by activation descending
  /// — the invariants NTA's threshold math relies on — though they are no
  /// longer exactly equi-depth (a performance, not correctness, property).
  Result<LayerIndex> AppendInputs(
      const storage::LayerActivationMatrix& delta) const;

  LayerIndex(LayerIndex&&) = default;
  LayerIndex& operator=(LayerIndex&&) = default;
  LayerIndex(const LayerIndex&) = delete;
  LayerIndex& operator=(const LayerIndex&) = delete;

  uint32_t num_inputs() const { return num_inputs_; }
  int64_t num_neurons() const { return num_neurons_; }
  int num_partitions() const { return num_partitions_; }
  /// Number of MAI entries per neuron (0 when MAI is disabled).
  uint32_t mai_count() const { return mai_count_; }
  bool has_mai() const { return mai_count_ > 0; }

  /// getPID(neuronID, inputID) from the paper.
  uint32_t GetPid(int64_t neuron, uint32_t input_id) const {
    return static_cast<uint32_t>(
        pids_.Get(static_cast<size_t>(neuron) * num_inputs_ + input_id));
  }

  /// getInputIDs(neuronID, PID): appends the partition's members to `out`.
  /// Scans the neuron's packed PID row (O(nInputs)).
  void GetInputIds(int64_t neuron, uint32_t pid,
                   std::vector<uint32_t>* out) const;

  /// lBnd / uBnd from the paper. For an empty partition the bounds are
  /// (+inf, -inf) so distance math naturally ignores it.
  float LowerBound(int64_t neuron, uint32_t pid) const {
    return lower_[BoundIndex(neuron, pid)];
  }
  float UpperBound(int64_t neuron, uint32_t pid) const {
    return upper_[BoundIndex(neuron, pid)];
  }

  /// Partition that a given activation value falls into for `neuron`
  /// (supports targets outside the indexed dataset). Returns the partition
  /// whose [lBnd, uBnd] range contains `activation`, or the nearest one if
  /// it falls in a gap.
  uint32_t PidForActivation(int64_t neuron, float activation) const;

  /// MAI entries of `neuron`, sorted by activation descending. Empty span
  /// when MAI is disabled.
  const MaiEntry* MaiEntries(int64_t neuron) const {
    return mai_.data() + static_cast<size_t>(neuron) * mai_count_;
  }

  /// Paper's analytic storage formula (§4.3, §4.7.2): PID bits + bounds +
  /// MAI pairs at 8 bytes each. Used for accounting and config selection.
  uint64_t AnalyticStorageBytes() const;
  static uint64_t AnalyticStorageBytes(int64_t num_neurons,
                                       uint32_t num_inputs, int num_partitions,
                                       uint32_t mai_count);

  void Serialize(BinaryWriter* writer) const;
  static Result<LayerIndex> Deserialize(BinaryReader* reader);

 private:
  LayerIndex() = default;

  static Result<LayerIndex> BuildEquiWidth(
      const storage::LayerActivationMatrix& acts,
      const LayerIndexConfig& config);

  /// Assigns `activation` to a partition in [start_pid, num_partitions),
  /// extending the nearest partition's bound when the value falls in a gap
  /// (mutates bounds; used only while constructing a merged index).
  uint32_t AssignPidExtending(int64_t neuron, float activation, int start_pid);

  size_t BoundIndex(int64_t neuron, uint32_t pid) const {
    DE_CHECK_LT(static_cast<int>(pid), num_partitions_);
    return static_cast<size_t>(neuron) * num_partitions_ + pid;
  }

  uint32_t num_inputs_ = 0;
  int64_t num_neurons_ = 0;
  int num_partitions_ = 0;
  uint32_t mai_count_ = 0;
  PackedIntArray pids_;        // (neuron, input) -> PID
  std::vector<float> lower_;   // (neuron, pid) -> lBnd
  std::vector<float> upper_;   // (neuron, pid) -> uBnd
  std::vector<MaiEntry> mai_;  // (neuron, rank) -> entry, rank by act desc
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_NPI_H_
