#include "core/npi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace deepeverest {
namespace core {

namespace {
constexpr uint32_t kMagic = 0xDEE71DE8;
constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

Result<LayerIndex> LayerIndex::Build(
    const storage::LayerActivationMatrix& acts,
    const LayerIndexConfig& config) {
  if (acts.num_inputs == 0 || acts.num_neurons == 0) {
    return Status::InvalidArgument("empty activation matrix");
  }
  if (config.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (config.mai_ratio < 0.0 || config.mai_ratio > 1.0) {
    return Status::InvalidArgument("mai_ratio must be in [0, 1]");
  }
  if (config.scheme == PartitionScheme::kEquiWidth &&
      config.mai_ratio > 0.0) {
    return Status::InvalidArgument(
        "MAI (a fixed input fraction) requires equi-depth partitioning");
  }
  if (config.scheme == PartitionScheme::kEquiWidth) {
    return BuildEquiWidth(acts, config);
  }

  LayerIndex index;
  index.num_inputs_ = acts.num_inputs;
  index.num_neurons_ = static_cast<int64_t>(acts.num_neurons);
  index.mai_count_ = static_cast<uint32_t>(
      config.mai_ratio * static_cast<double>(acts.num_inputs));
  if (index.mai_count_ > acts.num_inputs) index.mai_count_ = acts.num_inputs;

  // Clamp num_partitions so no equi-depth partition is empty: with MAI,
  // partition 0 is the MAI fraction and the rest split the remaining
  // inputs; without MAI all partitions split all inputs.
  const uint32_t rest =
      acts.num_inputs - index.mai_count_;  // inputs outside MAI
  int num_partitions = config.num_partitions;
  if (index.mai_count_ > 0) {
    const int max_parts = 1 + static_cast<int>(rest);  // MAI + one per input
    num_partitions = std::min(num_partitions, max_parts);
  } else {
    num_partitions = std::min(
        num_partitions, static_cast<int>(acts.num_inputs));
  }
  index.num_partitions_ = num_partitions;

  // Per-partition sizes (identical for every neuron because partitioning is
  // by rank): partition 0 takes the MAI entries when MAI is enabled; the
  // remaining inputs are split as evenly as possible over the rest.
  std::vector<uint32_t> sizes(static_cast<size_t>(num_partitions), 0);
  {
    uint32_t first = 0;
    int equi_parts = num_partitions;
    if (index.mai_count_ > 0) {
      sizes[0] = index.mai_count_;
      first = 1;
      equi_parts = num_partitions - 1;
    }
    if (equi_parts > 0) {
      const uint32_t base = rest / static_cast<uint32_t>(equi_parts);
      const uint32_t extra = rest % static_cast<uint32_t>(equi_parts);
      for (int p = 0; p < equi_parts; ++p) {
        sizes[first + static_cast<size_t>(p)] =
            base + (static_cast<uint32_t>(p) < extra ? 1 : 0);
      }
    } else if (index.mai_count_ > 0 && rest > 0) {
      return Status::Internal("partition sizing overflow");
    }
  }

  const size_t total_slots =
      static_cast<size_t>(index.num_neurons_) * index.num_inputs_;
  index.pids_ = PackedIntArray(
      total_slots, PackedIntArray::BitsFor(
                       static_cast<uint64_t>(num_partitions)));
  index.lower_.assign(
      static_cast<size_t>(index.num_neurons_) * num_partitions, kInf);
  index.upper_.assign(
      static_cast<size_t>(index.num_neurons_) * num_partitions, -kInf);
  index.mai_.resize(static_cast<size_t>(index.num_neurons_) *
                    index.mai_count_);

  // Reused scratch: inputIDs sorted by activation descending (ties by id so
  // builds are deterministic).
  std::vector<uint32_t> order(acts.num_inputs);
  for (int64_t neuron = 0; neuron < index.num_neurons_; ++neuron) {
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const float va = acts.At(a, static_cast<uint64_t>(neuron));
      const float vb = acts.At(b, static_cast<uint64_t>(neuron));
      if (va != vb) return va > vb;
      return a < b;
    });

    size_t rank = 0;
    for (int pid = 0; pid < num_partitions; ++pid) {
      const size_t bound_idx = index.BoundIndex(neuron, static_cast<uint32_t>(pid));
      for (uint32_t j = 0; j < sizes[static_cast<size_t>(pid)]; ++j, ++rank) {
        const uint32_t input_id = order[rank];
        const float act = acts.At(input_id, static_cast<uint64_t>(neuron));
        index.pids_.Set(
            static_cast<size_t>(neuron) * index.num_inputs_ + input_id,
            static_cast<uint64_t>(pid));
        // Descending order: first member is the upper bound, last the lower.
        if (j == 0) index.upper_[bound_idx] = act;
        index.lower_[bound_idx] = act;
        if (pid == 0 && index.mai_count_ > 0) {
          index.mai_[static_cast<size_t>(neuron) * index.mai_count_ + j] =
              MaiEntry{act, input_id};
        }
      }
    }
    DE_CHECK_EQ(rank, static_cast<size_t>(acts.num_inputs));
  }
  return index;
}

Result<LayerIndex> LayerIndex::BuildEquiWidth(
    const storage::LayerActivationMatrix& acts,
    const LayerIndexConfig& config) {
  LayerIndex index;
  index.num_inputs_ = acts.num_inputs;
  index.num_neurons_ = static_cast<int64_t>(acts.num_neurons);
  index.mai_count_ = 0;
  const int num_partitions =
      std::min(config.num_partitions, static_cast<int>(acts.num_inputs));
  index.num_partitions_ = num_partitions;

  const size_t total_slots =
      static_cast<size_t>(index.num_neurons_) * index.num_inputs_;
  index.pids_ = PackedIntArray(
      total_slots,
      PackedIntArray::BitsFor(static_cast<uint64_t>(num_partitions)));
  index.lower_.assign(
      static_cast<size_t>(index.num_neurons_) * num_partitions, kInf);
  index.upper_.assign(
      static_cast<size_t>(index.num_neurons_) * num_partitions, -kInf);

  for (int64_t neuron = 0; neuron < index.num_neurons_; ++neuron) {
    // Value range for this neuron; partition 0 covers the highest slice.
    float lo = acts.At(0, static_cast<uint64_t>(neuron));
    float hi = lo;
    for (uint32_t id = 1; id < acts.num_inputs; ++id) {
      const float v = acts.At(id, static_cast<uint64_t>(neuron));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const float width = hi - lo;
    for (uint32_t id = 0; id < acts.num_inputs; ++id) {
      const float v = acts.At(id, static_cast<uint64_t>(neuron));
      int pid = 0;
      if (width > 0.0f) {
        // Highest values -> partition 0.
        pid = static_cast<int>((hi - v) / width *
                               static_cast<float>(num_partitions));
        pid = std::min(pid, num_partitions - 1);
      }
      index.pids_.Set(static_cast<size_t>(neuron) * index.num_inputs_ + id,
                      static_cast<uint64_t>(pid));
      const size_t bound_idx =
          index.BoundIndex(neuron, static_cast<uint32_t>(pid));
      index.lower_[bound_idx] = std::min(index.lower_[bound_idx], v);
      index.upper_[bound_idx] = std::max(index.upper_[bound_idx], v);
    }
  }
  return index;
}

uint32_t LayerIndex::AssignPidExtending(int64_t neuron, float activation,
                                        int start_pid) {
  int best = -1;
  float best_gap = kInf;
  for (int pid = start_pid; pid < num_partitions_; ++pid) {
    const size_t bi = BoundIndex(neuron, static_cast<uint32_t>(pid));
    const float lo = lower_[bi];
    const float hi = upper_[bi];
    if (lo > hi) continue;  // empty partition
    if (activation >= lo && activation <= hi) {
      return static_cast<uint32_t>(pid);
    }
    const float gap = activation > hi ? activation - hi : lo - activation;
    if (gap < best_gap) {
      best_gap = gap;
      best = pid;
    }
  }
  if (best < 0) {
    // Every candidate partition is empty; seed the first one. (This can only
    // happen when ALL of them are empty, so descending order is preserved.)
    const size_t bi = BoundIndex(neuron, static_cast<uint32_t>(start_pid));
    lower_[bi] = activation;
    upper_[bi] = activation;
    return static_cast<uint32_t>(start_pid);
  }
  // The value sits in a gap between the chosen partition and its neighbour,
  // so extending the near bound toward it cannot overlap another partition.
  const size_t bi = BoundIndex(neuron, static_cast<uint32_t>(best));
  if (activation > upper_[bi]) {
    upper_[bi] = activation;
  } else {
    lower_[bi] = activation;
  }
  return static_cast<uint32_t>(best);
}

Result<LayerIndex> LayerIndex::AppendInputs(
    const storage::LayerActivationMatrix& delta) const {
  if (delta.num_inputs == 0) {
    return Status::InvalidArgument("empty activation delta");
  }
  if (static_cast<int64_t>(delta.num_neurons) != num_neurons_) {
    return Status::InvalidArgument("delta neuron count mismatch");
  }
  if (static_cast<uint64_t>(num_inputs_) + delta.num_inputs >
      std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange("input id space exhausted");
  }
  if (mai_count_ > 0 && num_partitions_ < 2) {
    // Degenerate build (every input is in the MAI): a displaced entry would
    // have no partition to land in. Callers fall back to a full rebuild.
    return Status::FailedPrecondition(
        "cannot append to a single-partition MAI index");
  }

  LayerIndex out;
  out.num_inputs_ = num_inputs_ + delta.num_inputs;
  out.num_neurons_ = num_neurons_;
  out.num_partitions_ = num_partitions_;
  out.mai_count_ = mai_count_;
  out.lower_ = lower_;
  out.upper_ = upper_;
  out.mai_ = mai_;
  const size_t total_slots =
      static_cast<size_t>(num_neurons_) * out.num_inputs_;
  out.pids_ = PackedIntArray(total_slots, pids_.bits_per_value());

  constexpr size_t kBlock = 1024;
  uint64_t buf[kBlock];
  for (int64_t neuron = 0; neuron < num_neurons_; ++neuron) {
    // Existing PIDs keep their value but the neuron-major stride changes, so
    // the packed row is re-laid-out wholesale.
    const size_t old_base = static_cast<size_t>(neuron) * num_inputs_;
    const size_t new_base = static_cast<size_t>(neuron) * out.num_inputs_;
    for (size_t begin = 0; begin < num_inputs_; begin += kBlock) {
      const size_t count =
          std::min(kBlock, static_cast<size_t>(num_inputs_) - begin);
      pids_.GetMany(old_base + begin, count, buf);
      for (size_t i = 0; i < count; ++i) {
        out.pids_.Set(new_base + begin + i, buf[i]);
      }
    }

    MaiEntry* mai_row =
        out.mai_.data() + static_cast<size_t>(neuron) * mai_count_;
    for (uint32_t j = 0; j < delta.num_inputs; ++j) {
      const uint32_t id = num_inputs_ + j;
      const float v = delta.At(j, static_cast<uint64_t>(neuron));
      if (mai_count_ > 0 && v > mai_row[mai_count_ - 1].activation) {
        // The new input enters the MAI (partition 0); the old minimum is
        // displaced into a regular partition. Ties keep the incumbent: MAI
        // order is (activation desc, id asc) and new ids are the largest.
        const MaiEntry evicted = mai_row[mai_count_ - 1];
        uint32_t pos = 0;
        while (pos < mai_count_ && !(v > mai_row[pos].activation)) ++pos;
        for (uint32_t r = mai_count_ - 1; r > pos; --r) {
          mai_row[r] = mai_row[r - 1];
        }
        mai_row[pos] = MaiEntry{v, id};
        out.pids_.Set(new_base + id, 0);
        const size_t b0 = out.BoundIndex(neuron, 0);
        out.upper_[b0] = mai_row[0].activation;
        out.lower_[b0] = mai_row[mai_count_ - 1].activation;
        const uint32_t epid =
            out.AssignPidExtending(neuron, evicted.activation, 1);
        out.pids_.Set(new_base + evicted.input_id, epid);
      } else {
        const int start_pid = mai_count_ > 0 ? 1 : 0;
        const uint32_t pid = out.AssignPidExtending(neuron, v, start_pid);
        out.pids_.Set(new_base + id, pid);
      }
    }
  }
  return out;
}

void LayerIndex::GetInputIds(int64_t neuron, uint32_t pid,
                             std::vector<uint32_t>* out) const {
  // Per-round membership scan: bulk-unpack the neuron's PID column in
  // fixed-size blocks (bounds checked once per block, SIMD unpack when
  // available) instead of one bounds-checked PackedIntArray::Get per input.
  constexpr size_t kBlock = 1024;
  uint64_t buf[kBlock];
  const size_t base = static_cast<size_t>(neuron) * num_inputs_;
  for (size_t begin = 0; begin < num_inputs_; begin += kBlock) {
    const size_t count = std::min(kBlock, static_cast<size_t>(num_inputs_) - begin);
    pids_.GetMany(base + begin, count, buf);
    for (size_t i = 0; i < count; ++i) {
      if (buf[i] == pid) out->push_back(static_cast<uint32_t>(begin + i));
    }
  }
}

uint32_t LayerIndex::PidForActivation(int64_t neuron, float activation) const {
  // Partitions are ordered by activation descending: partition 0 covers the
  // largest values. Find the partition whose range contains `activation`;
  // if it falls in a gap between partitions, return the nearer side.
  uint32_t best = 0;
  float best_gap = kInf;
  for (int pid = 0; pid < num_partitions_; ++pid) {
    const float lo = LowerBound(neuron, static_cast<uint32_t>(pid));
    const float hi = UpperBound(neuron, static_cast<uint32_t>(pid));
    if (lo > hi) continue;  // empty partition
    if (activation >= lo && activation <= hi) {
      return static_cast<uint32_t>(pid);
    }
    const float gap =
        activation > hi ? activation - hi : lo - activation;
    if (gap < best_gap) {
      best_gap = gap;
      best = static_cast<uint32_t>(pid);
    }
  }
  return best;
}

uint64_t LayerIndex::AnalyticStorageBytes(int64_t num_neurons,
                                          uint32_t num_inputs,
                                          int num_partitions,
                                          uint32_t mai_count) {
  const uint64_t pid_bits =
      static_cast<uint64_t>(num_neurons) * num_inputs *
      static_cast<uint64_t>(
          PackedIntArray::BitsFor(static_cast<uint64_t>(num_partitions)));
  const uint64_t bounds_bytes = static_cast<uint64_t>(num_neurons) *
                                static_cast<uint64_t>(num_partitions) * 2 * 4;
  // MAI: activation (4 bytes) + inputID (4 bytes) per pair (§4.7.2).
  const uint64_t mai_bytes =
      static_cast<uint64_t>(num_neurons) * mai_count * 8;
  return (pid_bits + 7) / 8 + bounds_bytes + mai_bytes;
}

uint64_t LayerIndex::AnalyticStorageBytes() const {
  return AnalyticStorageBytes(num_neurons_, num_inputs_, num_partitions_,
                              mai_count_);
}

void LayerIndex::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(kMagic);
  writer->WriteU32(num_inputs_);
  writer->WriteI64(num_neurons_);
  writer->WriteI32(num_partitions_);
  writer->WriteU32(mai_count_);
  writer->WriteF32Vector(lower_);
  writer->WriteF32Vector(upper_);
  writer->WriteU64Vector(pids_.words());
  std::vector<float> mai_acts(mai_.size());
  std::vector<uint32_t> mai_ids(mai_.size());
  for (size_t i = 0; i < mai_.size(); ++i) {
    mai_acts[i] = mai_[i].activation;
    mai_ids[i] = mai_[i].input_id;
  }
  writer->WriteF32Vector(mai_acts);
  writer->WriteU32Vector(mai_ids);
}

Result<LayerIndex> LayerIndex::Deserialize(BinaryReader* reader) {
  uint32_t magic = 0;
  DE_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != kMagic) return Status::IOError("bad layer index magic");
  LayerIndex index;
  DE_RETURN_NOT_OK(reader->ReadU32(&index.num_inputs_));
  DE_RETURN_NOT_OK(reader->ReadI64(&index.num_neurons_));
  DE_RETURN_NOT_OK(reader->ReadI32(&index.num_partitions_));
  DE_RETURN_NOT_OK(reader->ReadU32(&index.mai_count_));
  if (index.num_inputs_ == 0 || index.num_neurons_ <= 0 ||
      index.num_partitions_ <= 0) {
    return Status::IOError("corrupt layer index geometry");
  }
  DE_RETURN_NOT_OK(reader->ReadF32Vector(&index.lower_));
  DE_RETURN_NOT_OK(reader->ReadF32Vector(&index.upper_));
  const size_t bound_slots = static_cast<size_t>(index.num_neurons_) *
                             static_cast<size_t>(index.num_partitions_);
  if (index.lower_.size() != bound_slots ||
      index.upper_.size() != bound_slots) {
    return Status::IOError("corrupt layer index bounds");
  }
  std::vector<uint64_t> words;
  DE_RETURN_NOT_OK(reader->ReadU64Vector(&words));
  const size_t total_slots =
      static_cast<size_t>(index.num_neurons_) * index.num_inputs_;
  const int bits = PackedIntArray::BitsFor(
      static_cast<uint64_t>(index.num_partitions_));
  const size_t expected_words =
      (total_slots * static_cast<size_t>(bits) + 63) / 64;
  if (words.size() != expected_words) {
    return Status::IOError("corrupt layer index PID payload");
  }
  *index.pids_.mutable_words() = std::move(words);
  index.pids_.RestoreGeometry(total_slots, bits);

  std::vector<float> mai_acts;
  std::vector<uint32_t> mai_ids;
  DE_RETURN_NOT_OK(reader->ReadF32Vector(&mai_acts));
  DE_RETURN_NOT_OK(reader->ReadU32Vector(&mai_ids));
  const size_t mai_slots =
      static_cast<size_t>(index.num_neurons_) * index.mai_count_;
  if (mai_acts.size() != mai_slots || mai_ids.size() != mai_slots) {
    return Status::IOError("corrupt layer index MAI payload");
  }
  index.mai_.resize(mai_slots);
  for (size_t i = 0; i < mai_slots; ++i) {
    index.mai_[i] = MaiEntry{mai_acts[i], mai_ids[i]};
  }
  return index;
}

}  // namespace core
}  // namespace deepeverest
