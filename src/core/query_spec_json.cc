#include "core/query_spec_json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/ql.h"

namespace deepeverest {
namespace core {

namespace {

Result<QosClass> ParseQosName(const std::string& name) {
  if (name == "interactive") return QosClass::kInteractive;
  if (name == "batch") return QosClass::kBatch;
  if (name == "best_effort") return QosClass::kBestEffort;
  return Status::InvalidArgument("unknown QoS class: " + name);
}

Result<DistanceKind> ParseDistanceName(const std::string& name) {
  if (name == "l1") return DistanceKind::kL1;
  if (name == "l2") return DistanceKind::kL2;
  if (name == "linf") return DistanceKind::kLInf;
  return Status::InvalidArgument("unknown distance: " + name +
                                 " (expected l1, l2, or linf)");
}

const char* DistanceName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kL1: return "l1";
    case DistanceKind::kLInf: return "linf";
    default: return "l2";
  }
}

Result<int64_t> ReadInt(const JsonValue& value, const std::string& name) {
  if (value.is_number()) {
    // Reject non-integral and out-of-int64-range numbers instead of
    // silently truncating/saturating wire input into a different query.
    const double num = value.number_value();
    if (!(num >= -9223372036854775808.0 && num < 9223372036854775808.0) ||
        num != std::floor(num)) {
      return Status::InvalidArgument("field '" + name +
                                     "' is not an integer");
    }
    return value.int_value();
  }
  if (value.is_string()) {
    // URL parameters arrive as strings; accept digits (with sign) only.
    // strtoll saturates on overflow with errno=ERANGE while still
    // consuming the token — that must 400, not become INT64_MAX.
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value.string_value().c_str(), &end,
                                          10);
    if (end != value.string_value().c_str() + value.string_value().size() ||
        value.string_value().empty() || errno == ERANGE) {
      return Status::InvalidArgument("field '" + name +
                                     "' is not an integer");
    }
    return static_cast<int64_t>(parsed);
  }
  return Status::InvalidArgument("field '" + name + "' is not an integer");
}

/// ReadInt plus a range check, for fields narrower than int64 — a value
/// that would wrap in the narrowing cast must 400, not silently become a
/// different query.
Result<int64_t> ReadIntInRange(const JsonValue& value,
                               const std::string& name, int64_t lo,
                               int64_t hi) {
  DE_ASSIGN_OR_RETURN(const int64_t parsed, ReadInt(value, name));
  if (parsed < lo || parsed > hi) {
    return Status::InvalidArgument("field '" + name + "' is out of range");
  }
  return parsed;
}

Result<double> ReadDouble(const JsonValue& value, const std::string& name) {
  double parsed;
  if (value.is_number()) {
    parsed = value.number_value();
  } else if (value.is_string()) {
    char* end = nullptr;
    parsed = std::strtod(value.string_value().c_str(), &end);
    if (value.string_value().empty() ||
        end != value.string_value().c_str() + value.string_value().size()) {
      return Status::InvalidArgument("field '" + name + "' is not a number");
    }
  } else {
    return Status::InvalidArgument("field '" + name + "' is not a number");
  }
  // No wire field has a meaningful non-finite value; "nan"/"1e999" via the
  // URL string path (or 1e999 overflowing strtod) must 400.
  if (!std::isfinite(parsed)) {
    return Status::InvalidArgument("field '" + name + "' must be finite");
  }
  return parsed;
}

/// Parses the neuron list: a JSON array of integers, or (URL form) a
/// comma-separated string like "0,2,4".
Result<std::vector<int64_t>> ReadNeurons(const JsonValue& value) {
  std::vector<int64_t> neurons;
  if (value.is_array()) {
    for (const JsonValue& item : value.array_items()) {
      if (!item.is_number()) {
        return Status::InvalidArgument("'neurons' must be integers");
      }
      // Same integrality/range discipline as the scalar fields: 1.9 must
      // 400, not silently query neuron 1.
      DE_ASSIGN_OR_RETURN(const int64_t id, ReadInt(item, "neurons"));
      neurons.push_back(id);
    }
    return neurons;
  }
  if (value.is_string()) {
    const std::string& text = value.string_value();
    size_t pos = 0;
    while (pos <= text.size()) {
      size_t comma = text.find(',', pos);
      if (comma == std::string::npos) comma = text.size();
      std::string token = text.substr(pos, comma - pos);
      if (token.empty()) {
        return Status::InvalidArgument("'neurons' has an empty element");
      }
      // Route each token through the one strict integer parser, so the
      // JSON-array and comma-list encodings cannot drift.
      DE_ASSIGN_OR_RETURN(
          const int64_t id,
          ReadInt(JsonValue::MakeString(std::move(token)), "neurons"));
      neurons.push_back(id);
      pos = comma + 1;
    }
    return neurons;
  }
  return Status::InvalidArgument("'neurons' must be an array");
}

/// Overlays the serving-envelope fields onto `spec`; shared by the
/// structured and the `ql` decode paths (the envelope applies either way).
Status ReadEnvelope(const JsonFieldFinder& find, QuerySpec* spec) {
  if (const JsonValue* session = find("session_id")) {
    DE_ASSIGN_OR_RETURN(const int64_t value, ReadInt(*session, "session_id"));
    if (value < 0) {
      return Status::InvalidArgument("'session_id' must be >= 0");
    }
    spec->session_id = static_cast<uint64_t>(value);
  }
  if (const JsonValue* qos = find("qos")) {
    if (!qos->is_string()) {
      return Status::InvalidArgument("'qos' must be a string");
    }
    DE_ASSIGN_OR_RETURN(spec->qos, ParseQosName(qos->string_value()));
  }
  if (const JsonValue* weight = find("weight")) {
    DE_ASSIGN_OR_RETURN(
        const int64_t value,
        ReadIntInRange(*weight, "weight", std::numeric_limits<int>::min(),
                       std::numeric_limits<int>::max()));
    spec->weight = static_cast<int>(value);
  }
  if (const JsonValue* deadline = find("deadline_ms")) {
    if (!deadline->is_null()) {
      DE_ASSIGN_OR_RETURN(spec->deadline_ms,
                          ReadDouble(*deadline, "deadline_ms"));
      if (spec->deadline_ms < 0.0) {
        return Status::InvalidArgument("'deadline_ms' must be >= 0");
      }
    }
  }
  return Status::OK();
}

}  // namespace

void WriteQuerySpecFields(const QuerySpec& spec, JsonWriter* w) {
  w->Key("kind");
  w->String(spec.kind == QuerySpec::Kind::kHighest ? "highest"
                                                   : "most_similar");
  w->Key("layer");
  w->Int(spec.layer);
  if (spec.has_derived_group()) {
    w->Key("top_neurons");
    w->Int(spec.top_neurons);
    if (spec.top_of >= 0) {
      w->Key("top_of");
      w->Int(spec.top_of);
    }
  } else {
    w->Key("neurons");
    w->BeginArray();
    for (const int64_t n : spec.neurons) w->Int(n);
    w->EndArray();
  }
  w->Key("k");
  w->Int(spec.k);
  if (spec.target_id >= 0) {
    w->Key("target_id");
    w->Int(spec.target_id);
  }
  if (!spec.target_activations.empty()) {
    w->Key("target_activations");
    w->BeginArray();
    // float→double is exact, so the round trip through the 17-digit double
    // encoding recovers the same float bits.
    for (const float v : spec.target_activations) {
      w->Double(static_cast<double>(v));
    }
    w->EndArray();
  }
  w->Key("distance");
  w->String(DistanceName(spec.distance));
  w->Key("theta");
  w->Double(spec.theta);
  w->Key("session_id");
  w->Uint(spec.session_id);
  w->Key("qos");
  w->String(QosClassName(spec.qos));
  w->Key("weight");
  w->Int(spec.weight);
  if (spec.deadline_ms >= 0.0) {
    w->Key("deadline_ms");
    w->Double(spec.deadline_ms);
  }
}

std::string QuerySpecJson(const QuerySpec& spec, const std::string& model) {
  JsonWriter w;
  w.BeginObject();
  if (!model.empty()) {
    w.Key("model");
    w.String(model);
  }
  WriteQuerySpecFields(spec, &w);
  w.EndObject();
  return w.TakeString();
}

Result<QuerySpec> QuerySpecFromFields(const JsonFieldFinder& find) {
  QuerySpec spec;

  if (const JsonValue* ql = find("ql")) {
    // Declarative text instead of structured fields: the QL parser builds
    // the query half; only the envelope may be given alongside.
    if (!ql->is_string()) {
      return Status::InvalidArgument("'ql' must be a string");
    }
    for (const char* conflicting :
         {"kind", "layer", "neurons", "top_neurons", "top_of", "k",
          "target_id", "target_activations", "distance", "theta"}) {
      if (find(conflicting) != nullptr) {
        return Status::InvalidArgument(
            std::string("'") + conflicting +
            "' cannot be combined with 'ql' (the query text already "
            "states it)");
      }
    }
    DE_ASSIGN_OR_RETURN(spec, ParseQuery(ql->string_value()));
    DE_RETURN_NOT_OK(ReadEnvelope(find, &spec));
    DE_RETURN_NOT_OK(ValidateSpec(spec));
    return spec;
  }

  if (const JsonValue* kind = find("kind")) {
    if (!kind->is_string()) {
      return Status::InvalidArgument("'kind' must be a string");
    }
    if (kind->string_value() == "highest") {
      spec.kind = QuerySpec::Kind::kHighest;
    } else if (kind->string_value() == "most_similar") {
      spec.kind = QuerySpec::Kind::kMostSimilar;
    } else {
      return Status::InvalidArgument("unknown kind: " + kind->string_value());
    }
  }

  // Field readers only guard the narrowing casts (a value that wraps an
  // int must 400, not become a different query); all *semantic* bounds —
  // k >= 1, layer >= 0, θ range, group shape — come from the one shared
  // ValidateSpec below, so every entry point produces identical errors.
  constexpr int64_t kIntMin = std::numeric_limits<int>::min();
  constexpr int64_t kIntMax = std::numeric_limits<int>::max();
  const JsonValue* layer = find("layer");
  if (layer == nullptr) return Status::InvalidArgument("'layer' is required");
  DE_ASSIGN_OR_RETURN(const int64_t layer_id,
                      ReadIntInRange(*layer, "layer", kIntMin, kIntMax));
  spec.layer = static_cast<int>(layer_id);

  const JsonValue* neurons = find("neurons");
  const JsonValue* top_neurons = find("top_neurons");
  if (neurons == nullptr && top_neurons == nullptr) {
    return Status::InvalidArgument(
        "'neurons' or 'top_neurons' is required");
  }
  if (neurons != nullptr) {
    DE_ASSIGN_OR_RETURN(spec.neurons, ReadNeurons(*neurons));
  }
  if (top_neurons != nullptr) {
    DE_ASSIGN_OR_RETURN(
        const int64_t value,
        ReadIntInRange(*top_neurons, "top_neurons", kIntMin, kIntMax));
    spec.top_neurons = static_cast<int>(value);
  }
  if (const JsonValue* top_of = find("top_of")) {
    DE_ASSIGN_OR_RETURN(spec.top_of, ReadInt(*top_of, "top_of"));
  }

  if (const JsonValue* k = find("k")) {
    DE_ASSIGN_OR_RETURN(const int64_t value,
                        ReadIntInRange(*k, "k", kIntMin, kIntMax));
    spec.k = static_cast<int>(value);
  }
  if (const JsonValue* target = find("target_id")) {
    DE_ASSIGN_OR_RETURN(spec.target_id, ReadInt(*target, "target_id"));
  }
  if (const JsonValue* target_acts = find("target_activations")) {
    // Out-of-dataset probe targets only make sense as structured JSON (an
    // array of numbers); there is no URL/comma-list form.
    if (!target_acts->is_array()) {
      return Status::InvalidArgument(
          "'target_activations' must be an array of numbers");
    }
    for (const JsonValue& item : target_acts->array_items()) {
      DE_ASSIGN_OR_RETURN(const double v,
                          ReadDouble(item, "target_activations"));
      spec.target_activations.push_back(static_cast<float>(v));
    }
  }
  if (const JsonValue* distance = find("distance")) {
    if (!distance->is_string()) {
      return Status::InvalidArgument("'distance' must be a string");
    }
    DE_ASSIGN_OR_RETURN(spec.distance,
                        ParseDistanceName(distance->string_value()));
  }
  if (const JsonValue* theta = find("theta")) {
    DE_ASSIGN_OR_RETURN(spec.theta, ReadDouble(*theta, "theta"));
  }
  DE_RETURN_NOT_OK(ReadEnvelope(find, &spec));
  // The shared choke point: wire-level semantic errors are identical to
  // the QL parser's and Submit's for the same malformed query.
  DE_RETURN_NOT_OK(ValidateSpec(spec));
  return spec;
}

Result<QuerySpec> QuerySpecFromJson(const JsonValue& object) {
  if (!object.is_object()) {
    return Status::InvalidArgument("query must be a JSON object");
  }
  return QuerySpecFromFields(
      [&object](const std::string& name) { return object.Find(name); });
}

}  // namespace core
}  // namespace deepeverest
