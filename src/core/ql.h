#ifndef DEEPEVEREST_CORE_QL_H_
#define DEEPEVEREST_CORE_QL_H_

#include <string>

#include "common/result.h"
#include "core/query_spec.h"

namespace deepeverest {
namespace core {

/// \brief The declarative query-language front end.
///
/// DeepEverest's interface is declarative: the user states *what* inputs to
/// retrieve, the system decides how (index-guided NTA vs scan, MAI fast
/// path, θ-approximation). This parser turns the small SQL-like language
/// into the one canonical core::QuerySpec every entry point shares:
///
///   query  := SELECT TOPK <k> kind FOR LAYER <layer> group
///             [USING <dist>] [THETA <theta>]
///   kind   := HIGHEST
///           | [MOST] SIMILAR TO <inputID>
///   group  := NEURONS ( n0 , n1 , ... )
///           | TOP <m> NEURONS [OF [INPUT] <inputID>]
///   dist   := L1 | L2 | LINF
///
/// `TOP m NEURONS` selects the m maximally activated neurons of the
/// reference input (the SIMILAR target by default, or the input named by
/// OF); the selection is *not* resolved here — it is recorded in the spec
/// (`top_neurons` / `top_of`) and resolved at execution time under the
/// query's QueryContext, so the resolution inference is metered,
/// deadline-checked, and cancellable like the rest of the query. Keywords
/// are case-insensitive.
///
/// Examples:
///   SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)
///   SELECT TOPK 10 SIMILAR TO 42 FOR LAYER 7 TOP 3 NEURONS USING L1
///   SELECT TOPK 5 MOST SIMILAR TO 9 FOR LAYER 13 NEURONS (5) THETA 0.9
///
/// QL covers the declarative half of the spec; the serving envelope
/// (session, QoS, deadline, weight) is left at its defaults for callers to
/// fill in. `QuerySpec::ToString()` emits the canonical text form, which
/// round-trips through ParseQuery bit-exactly (θ uses 17 significant
/// digits).
///
/// Parses the query text; errors are InvalidArgument with a description of
/// the offending token. The parsed spec has passed ValidateSpec.
Result<QuerySpec> ParseQuery(const std::string& text);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QL_H_
