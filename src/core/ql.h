#ifndef DEEPEVEREST_CORE_QL_H_
#define DEEPEVEREST_CORE_QL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/deepeverest.h"
#include "core/distance.h"
#include "core/query.h"

namespace deepeverest {
namespace core {

/// \brief A parsed declarative top-k query.
///
/// DeepEverest's interface is declarative: the user states *what* inputs to
/// retrieve, the system decides how (index-guided NTA vs scan, MAI fast
/// path, θ-approximation). This front end parses a small SQL-like language:
///
///   query  := SELECT TOPK <k> kind FOR LAYER <layer> group
///             [USING <dist>] [THETA <theta>]
///   kind   := HIGHEST
///           | [MOST] SIMILAR TO <inputID>
///   group  := NEURONS ( n0 , n1 , ... )
///           | TOP <m> NEURONS [OF [INPUT] <inputID>]
///   dist   := L1 | L2 | LINF
///
/// `TOP m NEURONS` selects the m maximally activated neurons of the
/// reference input (the SIMILAR target by default, or the input named by
/// OF). Keywords are case-insensitive.
///
/// Examples:
///   SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)
///   SELECT TOPK 10 SIMILAR TO 42 FOR LAYER 7 TOP 3 NEURONS USING L1
///   SELECT TOPK 5 MOST SIMILAR TO 9 FOR LAYER 13 NEURONS (5) THETA 0.9
struct ParsedQuery {
  enum class Kind { kHighest, kMostSimilar };

  Kind kind = Kind::kHighest;
  int k = 0;
  int layer = 0;
  /// Explicit neuron group; empty when `top_neurons > 0`.
  std::vector<int64_t> neurons;
  /// When > 0: use the reference input's maximally activated neurons.
  int top_neurons = 0;
  /// Reference input for TOP ... NEURONS (-1 = the SIMILAR target).
  int64_t top_of = -1;
  /// Target input for most-similar queries.
  int64_t target = -1;
  DistanceKind distance = DistanceKind::kL2;
  double theta = 1.0;

  /// Canonical text form (round-trips through ParseQuery).
  std::string ToString() const;
};

/// Parses the query text; errors are InvalidArgument with a description of
/// the offending token.
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Parses and executes `text` against a DeepEverest instance.
Result<TopKResult> ExecuteQuery(DeepEverest* system, const std::string& text);

/// Executes an already-parsed query.
Result<TopKResult> ExecuteQuery(DeepEverest* system,
                                const ParsedQuery& query);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QL_H_
