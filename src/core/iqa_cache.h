#ifndef DEEPEVEREST_CORE_IQA_CACHE_H_
#define DEEPEVEREST_CORE_IQA_CACHE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace deepeverest {
namespace core {

/// \brief In-memory activation cache for Inter-Query Acceleration (§4.7.3).
///
/// Caches *whole-layer* activation rows — the activations of every neuron in
/// a layer for one input — so a later query against a different neuron group
/// in the same layer can be served without re-running inference.
///
/// Eviction is **most recently used** (MRU): NTA processes partitions from
/// most- to least-similar, so rows inserted early in a query belong to the
/// most informative inputs; under pressure the cache sheds the latest rows
/// and keeps the early ones.
class IqaCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  explicit IqaCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  IqaCache(const IqaCache&) = delete;
  IqaCache& operator=(const IqaCache&) = delete;

  /// Looks up (layer, input). On hit, returns a pointer valid until the next
  /// Insert(), marks the entry used, and counts a hit; nullptr on miss.
  const std::vector<float>* Lookup(int layer, uint32_t input_id);

  /// Inserts a full-layer row, evicting MRU entries if needed. Rows larger
  /// than the whole capacity are not cached.
  void Insert(int layer, uint32_t input_id, std::vector<float> row);

  /// Drops every entry (e.g. when the dataset or model changes).
  void Clear();

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t size_bytes() const { return size_bytes_; }
  size_t entry_count() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::vector<float> row;
    uint64_t last_use = 0;
  };

  static uint64_t KeyOf(int layer, uint32_t input_id) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(layer)) << 32) |
           input_id;
  }
  static uint64_t BytesOf(const std::vector<float>& row) {
    return row.size() * sizeof(float) + 64;  // payload + bookkeeping estimate
  }

  void Touch(uint64_t key, Entry* entry);

  uint64_t capacity_bytes_;
  uint64_t size_bytes_ = 0;
  uint64_t clock_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  // last_use -> key, for O(log n) MRU eviction (largest last_use first).
  std::map<uint64_t, uint64_t> by_recency_;
  Stats stats_;
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_IQA_CACHE_H_
