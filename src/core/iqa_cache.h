#ifndef DEEPEVEREST_CORE_IQA_CACHE_H_
#define DEEPEVEREST_CORE_IQA_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"

namespace deepeverest {
namespace core {

/// \brief In-memory activation cache for Inter-Query Acceleration (§4.7.3),
/// sharded for concurrent query execution.
///
/// Caches *whole-layer* activation rows — the activations of every neuron in
/// a layer for one input — so a later query against a different neuron group
/// in the same layer can be served without re-running inference.
///
/// Entries are hashed onto `num_shards` independent shards, each protected
/// by its own mutex and carrying its own recency list and byte budget
/// (`capacity_bytes / num_shards`). Hit/miss/insert/evict counters are
/// per-shard atomics, so Stats reads never take a lock. With one shard the
/// behaviour is exactly the original single-threaded cache.
///
/// Eviction within a shard is **most recently used** (MRU) by default: NTA
/// processes partitions from most- to least-similar, so rows inserted early
/// in a query belong to the most informative inputs; under pressure the
/// cache sheds the latest rows and keeps the early ones. `kLru` is available
/// for workloads without that access pattern (e.g. uniform serving traffic).
///
/// Thread-safety: all public methods are safe to call concurrently. Lookup
/// copies the row out under the shard lock — no pointers into the cache
/// escape, so concurrent Insert/eviction can never invalidate a reader.
class IqaCache {
 public:
  enum class EvictionPolicy {
    kMru,  // paper §4.7.3 default
    kLru,
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  /// Per-shard observability snapshot for ServiceStats dashboards.
  struct ShardSnapshot {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    uint64_t size_bytes = 0;
    uint64_t capacity_bytes = 0;
    size_t entry_count = 0;
  };

  explicit IqaCache(uint64_t capacity_bytes, int num_shards = 1,
                    EvictionPolicy policy = EvictionPolicy::kMru);

  IqaCache(const IqaCache&) = delete;
  IqaCache& operator=(const IqaCache&) = delete;

  /// Looks up (layer, input). On hit, copies the full row into `*row_out`
  /// and counts a hit; returns false (and counts a miss) when absent.
  bool Lookup(int layer, uint32_t input_id, std::vector<float>* row_out);

  /// Like Lookup but extracts only `neurons` (flat indices into the row)
  /// into `*out`, avoiding a full-row copy — the NTA hot path.
  bool Gather(int layer, uint32_t input_id,
              const std::vector<int64_t>& neurons, std::vector<float>* out);

  /// Inserts a full-layer row, evicting entries from the target shard if
  /// needed. Rows larger than the shard capacity are not cached.
  void Insert(int layer, uint32_t input_id, std::vector<float> row);

  /// Drops every entry (e.g. when the dataset or model changes).
  void Clear();

  /// Drops every entry of one layer — the invalidation hook for the
  /// rebuild-on-corrupt-index path. (The ingest path never needs it: the
  /// dataset is append-only and rows are keyed by (layer, input), so
  /// existing entries stay valid as the dataset grows.)
  void EraseLayer(int layer);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  EvictionPolicy eviction_policy() const { return policy_; }

  /// Sums over shards. Consistent when quiescent; a live snapshot under
  /// concurrent traffic.
  uint64_t size_bytes() const;
  size_t entry_count() const;

  /// Aggregated counters across all shards (lock-free).
  Stats stats() const;

  /// One snapshot per shard (lock-free counters; sizes read under the
  /// shard lock).
  std::vector<ShardSnapshot> ShardSnapshots() const;

 private:
  struct Entry {
    std::vector<float> row;
    uint64_t last_use = 0;
  };

  /// One lock stripe: its own map, recency index, byte budget, and atomic
  /// counters, padded apart from its neighbours.
  struct Shard {
    mutable common::Mutex mu;
    uint64_t capacity_bytes = 0;  // set once at construction, then read-only
    uint64_t size_bytes GUARDED_BY(mu) = 0;
    uint64_t clock GUARDED_BY(mu) = 0;
    std::unordered_map<uint64_t, Entry> entries GUARDED_BY(mu);
    // last_use -> key, for O(log n) eviction from either end.
    std::map<uint64_t, uint64_t> by_recency GUARDED_BY(mu);
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> insertions{0};
    std::atomic<int64_t> evictions{0};
  };

  static uint64_t KeyOf(int layer, uint32_t input_id) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(layer)) << 32) |
           input_id;
  }
  static uint64_t BytesOf(const std::vector<float>& row) {
    return row.size() * sizeof(float) + 64;  // payload + bookkeeping estimate
  }

  Shard& ShardFor(uint64_t key);

  /// Finds (layer, input) in its shard, bumps recency and the hit/miss
  /// counters, and invokes `consume(row)` under the shard lock on a hit.
  template <typename Consumer>
  bool LookupInternal(int layer, uint32_t input_id, Consumer&& consume);

  void TouchLocked(Shard* shard, uint64_t key, Entry* entry)
      REQUIRES(shard->mu);

  uint64_t capacity_bytes_;
  EvictionPolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_IQA_CACHE_H_
