#ifndef DEEPEVEREST_CORE_DEEPEVEREST_H_
#define DEEPEVEREST_CORE_DEEPEVEREST_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/index_manager.h"
#include "core/iqa_cache.h"
#include "core/nta.h"
#include "core/query.h"
#include "core/query_spec.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace core {

/// \brief Top-level DeepEverest options.
struct DeepEverestOptions {
  /// Storage budget for all indexes. When 0, the budget is
  /// `storage_budget_fraction` of full materialisation (the paper's default
  /// experiments use 20%).
  uint64_t storage_budget_bytes = 0;
  double storage_budget_fraction = 0.2;

  /// Throughput-optimal inference batch size for this model/hardware.
  int batch_size = 64;

  /// Manual overrides for the automatic configuration selection (§4.7.2);
  /// used by the ablation experiments. Leave at the sentinels to let the
  /// selector decide.
  int num_partitions_override = 0;   // 0 = automatic
  double mai_ratio_override = -1.0;  // < 0 = automatic

  /// Use the MAI fast path during query execution (§4.7.1).
  bool enable_mai = true;

  /// Inter-Query Acceleration (§4.7.3): in-memory activation cache shared
  /// across queries.
  bool enable_iqa = false;
  uint64_t iqa_capacity_bytes = 1ull << 30;  // paper uses a 1 GB budget
  /// Lock stripes for the IQA cache. 1 reproduces the paper's single cache;
  /// the concurrent query service uses more to avoid contention.
  int iqa_shards = 1;

  /// Persist indexes to the FileStore (incremental indexing, §4.6).
  bool persist_indexes = true;
  bool force_sync = false;
};

/// \brief The DeepEverest system: declarative top-k queries over DNN
/// activations, accelerated by NPI + MAI + NTA with incremental indexing.
///
/// Typical use:
/// \code
///   auto store = storage::FileStore::Open(dir).value();
///   auto de = DeepEverest::Create(model.get(), &dataset, &store, {});
///   NeuronGroup g{.layer = 7, .neurons = {12, 55, 203}};
///   auto top = (*de)->TopKMostSimilar(/*target_id=*/42, g, /*k=*/20);
/// \endcode
class DeepEverest {
 public:
  /// `model`, `dataset`, and `store` must outlive the returned object.
  static Result<std::unique_ptr<DeepEverest>> Create(
      const nn::Model* model, const data::Dataset* dataset,
      storage::FileStore* store, const DeepEverestOptions& options);

  /// Top-k highest query ("FireMax"): the k inputs with the largest
  /// dist-aggregated activations for the group. `dist` nullptr = l2.
  Result<TopKResult> TopKHighest(const NeuronGroup& group, int k,
                                 DistancePtr dist = nullptr);

  /// Top-k most-similar query ("SimTop"/"SimHigh"): the k inputs closest to
  /// dataset input `target_id` in the group's activation space. The target
  /// itself is excluded from the result.
  Result<TopKResult> TopKMostSimilar(uint32_t target_id,
                                     const NeuronGroup& group, int k,
                                     DistancePtr dist = nullptr);

  /// Full-control variants (θ-approximation, custom dist), optionally with
  /// a per-query QueryContext carrying QoS class, deadline, cancellation,
  /// receipt accumulation, progress sink, and the shared IQA cache / batch
  /// scheduler. `ctx` may be null (a default context is used); when the
  /// context's `iqa` is null it is filled with the engine's cache. Deadline
  /// expiry or cancellation aborts with DeadlineExceeded / Cancelled within
  /// one NTA round; the context's receipt then still reflects the inference
  /// spent before the abort.
  Result<TopKResult> TopKHighestWithOptions(const NeuronGroup& group,
                                            NtaOptions options,
                                            QueryContext* ctx = nullptr);
  Result<TopKResult> TopKMostSimilarWithOptions(uint32_t target_id,
                                                const NeuronGroup& group,
                                                NtaOptions options,
                                                QueryContext* ctx = nullptr);
  /// Most-similar against an arbitrary activation vector (out-of-dataset
  /// probe), one value per neuron in `group`.
  Result<TopKResult> TopKMostSimilarToActivations(
      const std::vector<float>& target_acts, const NeuronGroup& group,
      NtaOptions options, QueryContext* ctx = nullptr);

  /// \brief The canonical execution path for a core::QuerySpec — the one
  /// function every entry point's query ultimately runs through (the
  /// QueryService's workers call it; engine-direct callers get the
  /// identical semantics by calling it themselves).
  ///
  /// Validates the spec (the shared ValidateSpec choke point), resolves a
  /// derived `TOP m NEURONS [OF input]` group under `ctx` — so the
  /// resolution inference is receipt-metered, deadline-checked, and
  /// cancellable like the rest of the query, and is included in the
  /// result's QueryStats — then executes with tie-complete NTA
  /// termination (the canonical serving mode: results are bit-identical
  /// to a fresh activation scan even on k-th-boundary value ties,
  /// regardless of schedule or cache state). The spec's serving envelope
  /// (session, QoS, deadline, weight) is NOT applied here — scheduling is
  /// the QueryService's job; `ctx` carries whatever of it applies.
  /// `ctx` may be null (a default context: no deadline, direct inference).
  Result<TopKResult> ExecuteSpec(const QuerySpec& spec,
                                 QueryContext* ctx = nullptr);

  /// The `m` maximally activated neurons of `layer` for `target_id`
  /// (descending activation) — the standard way interpretation sessions
  /// choose their neuron groups (§4.7.1). Costs one inference pass. The
  /// context-taking overload meters that pass into `ctx->receipt`, routes
  /// it through the context's batch scheduler, and honours
  /// cancellation/deadline — it is how ExecuteSpec resolves derived
  /// groups; the convenience overload runs with a default context.
  Result<std::vector<int64_t>> MaximallyActivatedNeurons(uint32_t target_id,
                                                         int layer, int m);
  Result<std::vector<int64_t>> MaximallyActivatedNeurons(uint32_t target_id,
                                                         int layer, int m,
                                                         QueryContext* ctx);

  /// Eagerly indexes every layer (paper Figure 10's extreme case). Without
  /// this call, indexes build incrementally as layers are queried.
  Status PreprocessAllLayers(PreprocessTimings* timings = nullptr);

  const SystemConfig& config() const { return config_; }
  const DeepEverestOptions& options() const { return options_; }
  nn::InferenceEngine* inference() { return &inference_; }
  IndexManager* index_manager() { return &index_manager_; }
  IqaCache* iqa_cache() { return iqa_cache_.get(); }

  /// Bytes of full float32 materialisation of every layer (the storage
  /// baseline all budgets are fractions of).
  uint64_t FullMaterializationBytes() const;

  /// Bytes of index data currently persisted.
  Result<uint64_t> PersistedIndexBytes() const {
    return index_manager_.PersistedBytes();
  }

  /// Index cost for all layers under the paper's §4.7.2 accounting formulas
  /// (PID bits + MAI pairs; per-partition bounds excluded as negligible at
  /// the paper's scale). This is what the configuration selector budgets.
  uint64_t AnalyticIndexBytes() const;

 private:
  DeepEverest(const nn::Model* model, const data::Dataset* dataset,
              storage::FileStore* store, const DeepEverestOptions& options,
              const SystemConfig& config);

  /// Runs `query` with incremental indexing: if the layer is not indexed
  /// yet, answers from the freshly computed activations and builds the
  /// index as a side effect (§4.6). `ctx` is non-null (callers substitute a
  /// local default); all inference — index builds included — lands in its
  /// receipt, from which the result's per-query stats are computed.
  template <typename NtaFn, typename ScanFn>
  Result<TopKResult> Execute(int layer, QueryContext* ctx, NtaFn&& nta_fn,
                             ScanFn&& scan_fn);

  const nn::Model* model_;
  DeepEverestOptions options_;
  SystemConfig config_;
  nn::InferenceEngine inference_;
  IndexManager index_manager_;
  std::unique_ptr<IqaCache> iqa_cache_;
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_DEEPEVEREST_H_
