#ifndef DEEPEVEREST_CORE_DEEPEVEREST_H_
#define DEEPEVEREST_CORE_DEEPEVEREST_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/index_manager.h"
#include "core/iqa_cache.h"
#include "core/nta.h"
#include "core/query.h"
#include "core/query_spec.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace core {

/// \brief Top-level DeepEverest options.
struct DeepEverestOptions {
  /// Storage budget for all indexes. When 0, the budget is
  /// `storage_budget_fraction` of full materialisation (the paper's default
  /// experiments use 20%).
  uint64_t storage_budget_bytes = 0;
  double storage_budget_fraction = 0.2;

  /// Throughput-optimal inference batch size for this model/hardware.
  int batch_size = 64;

  /// Manual overrides for the automatic configuration selection (§4.7.2);
  /// used by the ablation experiments. Leave at the sentinels to let the
  /// selector decide.
  int num_partitions_override = 0;   // 0 = automatic
  double mai_ratio_override = -1.0;  // < 0 = automatic

  /// Use the MAI fast path during query execution (§4.7.1).
  bool enable_mai = true;

  /// Inter-Query Acceleration (§4.7.3): in-memory activation cache shared
  /// across queries.
  bool enable_iqa = false;
  uint64_t iqa_capacity_bytes = 1ull << 30;  // paper uses a 1 GB budget
  /// Lock stripes for the IQA cache. 1 reproduces the paper's single cache;
  /// the concurrent query service uses more to avoid contention.
  int iqa_shards = 1;

  /// Persist indexes to the FileStore (incremental indexing, §4.6).
  bool persist_indexes = true;
  bool force_sync = false;
};

class DeepEverest;

/// \brief One in-flight QuerySpec as a first-class, resumable object: the
/// whole-query phase machine (derived-group resolution → incremental index
/// ensure → scan or round-sliced NTA) with all state checkpointed between
/// `Step()` calls.
///
/// Created by DeepEverest::BeginSpec(). The first Steps run the coarse
/// phases (resolution costs at most one inference pass; the index ensure may
/// build the layer index); once NTA starts, every further Step runs exactly
/// one NTA round. The final result — and its receipt-metered `inputs_run`
/// attribution over the *whole* execution, resolution and index build
/// included — is identical to an uninterrupted ExecuteSpec call.
///
/// Ownership/threading: single-owner state, NOT internally synchronised. At
/// most one thread may touch the object at a time; a cross-thread handoff
/// must be ordered by an external synchronisation point (the QueryService
/// parks executions in its mutex-guarded dispatch queue). The QueryContext
/// passed to BeginSpec must outlive the execution; cancellation and deadline
/// are re-validated at every Step, so an execution whose deadline expired
/// while parked aborts on its first resumed Step.
class QueryExecution {
 public:
  ~QueryExecution();
  QueryExecution(const QueryExecution&) = delete;
  QueryExecution& operator=(const QueryExecution&) = delete;

  /// Runs one unit of work (one phase transition or one NTA round). A
  /// non-OK status finishes the execution; TakeResult() returns the same
  /// status. Calling Step() once done is a no-op.
  Status Step();

  /// True once the query finished (answer ready or terminal error).
  bool done() const;

  /// Steps until done() or until `should_yield` returns true between
  /// steps. Returns OK when yielding; otherwise the terminal status.
  Status RunUntil(const std::function<bool()>& should_yield);

  /// Steps to completion and returns the final result.
  Result<TopKResult> Run();

  /// After done(): the final result or the terminal error. `wall_seconds`
  /// is accumulated *active* stepping time; parked time is not charged.
  Result<TopKResult> TakeResult();

 private:
  friend class DeepEverest;
  struct Impl;
  explicit QueryExecution(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// \brief The DeepEverest system: declarative top-k queries over DNN
/// activations, accelerated by NPI + MAI + NTA with incremental indexing.
///
/// Typical use:
/// \code
///   auto store = storage::FileStore::Open(dir).value();
///   auto de = DeepEverest::Create(model.get(), &dataset, &store, {});
///   NeuronGroup g{.layer = 7, .neurons = {12, 55, 203}};
///   auto top = (*de)->TopKMostSimilar(/*target_id=*/42, g, /*k=*/20);
/// \endcode
///
/// The system has ONE execution mechanism: every query is a core::QuerySpec
/// run through the resumable QueryExecution phase machine (BeginSpec). The
/// run-to-completion entry points are thin spec-building wrappers over it;
/// there is no separate non-resumable path and no entry point that bypasses
/// ValidateSpec or QueryContext.
class DeepEverest {
 public:
  /// `model`, `dataset`, and `store` must outlive the returned object.
  static Result<std::unique_ptr<DeepEverest>> Create(
      const nn::Model* model, const data::Dataset* dataset,
      storage::FileStore* store, const DeepEverestOptions& options);

  /// Top-k highest query ("FireMax"): the k inputs with the largest
  /// dist-aggregated activations for the group. Builds a QuerySpec and runs
  /// it through the canonical path (tie-complete termination, default
  /// context).
  Result<TopKResult> TopKHighest(const NeuronGroup& group, int k,
                                 DistanceKind distance = DistanceKind::kL2);

  /// Top-k most-similar query ("SimTop"/"SimHigh"): the k inputs closest to
  /// dataset input `target_id` in the group's activation space. The target
  /// itself is excluded from the result.
  Result<TopKResult> TopKMostSimilar(uint32_t target_id,
                                     const NeuronGroup& group, int k,
                                     DistanceKind distance = DistanceKind::kL2);

  /// \brief Begins a resumable execution of `spec` — the one mechanism every
  /// query runs through.
  ///
  /// Validates the spec (the shared ValidateSpec choke point) immediately;
  /// all further work — derived `TOP m NEURONS [OF input]` resolution under
  /// `ctx` (receipt-metered, deadline-checked, cancellable), incremental
  /// index ensure, then tie-complete NTA one round per Step — happens in
  /// Step(). The canonical serving mode is tie-complete: results are
  /// bit-identical to a fresh activation scan even on k-th-boundary value
  /// ties, regardless of schedule, park/resume timing, or cache state. The
  /// spec's serving envelope (session, QoS, deadline, weight) is NOT applied
  /// here — scheduling is the QueryService's job; `ctx` carries whatever of
  /// it applies. `ctx` must be non-null and outlive the execution; when its
  /// `iqa` is null it is filled with the engine's cache.
  Result<std::unique_ptr<QueryExecution>> BeginSpec(const QuerySpec& spec,
                                                    QueryContext* ctx);

  /// Begin + Run convenience: executes `spec` to completion. `ctx` may be
  /// null (a default context: no deadline, direct inference).
  Result<TopKResult> ExecuteSpec(const QuerySpec& spec,
                                 QueryContext* ctx = nullptr);

  /// The `m` maximally activated neurons of `layer` for `target_id`
  /// (descending activation) — the standard way interpretation sessions
  /// choose their neuron groups (§4.7.1). Costs one inference pass. The
  /// context-taking overload meters that pass into `ctx->receipt`, routes
  /// it through the context's batch scheduler, and honours
  /// cancellation/deadline — it is how BeginSpec resolves derived
  /// groups; the convenience overload runs with a default context.
  Result<std::vector<int64_t>> MaximallyActivatedNeurons(uint32_t target_id,
                                                         int layer, int m);
  Result<std::vector<int64_t>> MaximallyActivatedNeurons(uint32_t target_id,
                                                         int layer, int m,
                                                         QueryContext* ctx);

  /// Eagerly indexes every layer (paper Figure 10's extreme case). Without
  /// this call, indexes build incrementally as layers are queried.
  Status PreprocessAllLayers(PreprocessTimings* timings = nullptr);

  const SystemConfig& config() const { return config_; }
  const DeepEverestOptions& options() const { return options_; }
  nn::InferenceEngine* inference() { return &inference_; }
  IndexManager* index_manager() { return &index_manager_; }
  IqaCache* iqa_cache() { return iqa_cache_.get(); }

  /// Bytes of full float32 materialisation of every layer (the storage
  /// baseline all budgets are fractions of).
  uint64_t FullMaterializationBytes() const;

  /// Bytes of index data currently persisted.
  Result<uint64_t> PersistedIndexBytes() const {
    return index_manager_.PersistedBytes();
  }

  /// Index cost for all layers under the paper's §4.7.2 accounting formulas
  /// (PID bits + MAI pairs; per-partition bounds excluded as negligible at
  /// the paper's scale). This is what the configuration selector budgets.
  uint64_t AnalyticIndexBytes() const;

 private:
  DeepEverest(const nn::Model* model, const data::Dataset* dataset,
              storage::FileStore* store, const DeepEverestOptions& options,
              const SystemConfig& config);

  const nn::Model* model_;
  DeepEverestOptions options_;
  SystemConfig config_;
  nn::InferenceEngine inference_;
  IndexManager index_manager_;
  std::unique_ptr<IqaCache> iqa_cache_;
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_DEEPEVEREST_H_
