#ifndef DEEPEVEREST_CORE_QUERY_SPEC_JSON_H_
#define DEEPEVEREST_CORE_QUERY_SPEC_JSON_H_

#include <functional>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "core/query_spec.h"

namespace deepeverest {
namespace core {

/// \brief The one JSON wire codec for core::QuerySpec, shared by the HTTP
/// server (decode), the clients/benches (encode), and the round-trip tests.
/// There is deliberately no second JSON schema for queries anywhere in the
/// repo — the server, the e2e client, and the benches cannot drift.
///
/// Wire schema (the body of `POST /v1/query`, see README "Network API"):
///   kind         "highest" (default) | "most_similar"
///   layer        int, required (unless `ql` is given)
///   neurons      array of ints, or the string "0,2,4" (URL form)
///   top_neurons  int > 0: derived group `TOP m NEURONS` instead of
///                `neurons`
///   top_of       int: the `OF <input>` reference for a derived group
///   k            int (default 20)
///   target_id    int, required for kind=most_similar
///   distance     "l1" | "l2" (default) | "linf"
///   theta        double in (0, 1] (default 1 = exact)
///   session_id   uint (default 0)
///   qos          "interactive" | "batch" (default) | "best_effort"
///   deadline_ms  double >= 0; 0 = already due; omit/null = none
///   weight       int >= 1 (default 1)
///   ql           declarative QL text ("SELECT TOPK ...") *instead of* the
///                structured query fields above; the envelope fields
///                (session_id, qos, deadline_ms, weight) still apply.
///
/// `model` and `stream` are routing/transport concerns read by the server,
/// not part of the spec; the decoder ignores them. Doubles are written with
/// 17 significant digits, so encode→decode round-trips bit-identically.

/// Serialises `spec` as a request body. `model` non-empty emits the routing
/// field.
std::string QuerySpecJson(const QuerySpec& spec,
                          const std::string& model = std::string());

/// Appends the spec's members to an already-open JSON object (for callers
/// composing a larger request).
void WriteQuerySpecFields(const QuerySpec& spec, JsonWriter* w);

/// Field accessor used by the decoder, so the JSON-body and URL-parameter
/// encodings funnel into one field-by-field builder. Returns nullptr when
/// the field is absent.
using JsonFieldFinder =
    std::function<const JsonValue*(const std::string& name)>;

/// Decodes a spec from a field source. URL parameters arrive as strings;
/// the readers accept both JSON-typed and string-encoded scalars with the
/// same strictness (non-integral, out-of-range, or non-finite values are
/// InvalidArgument, never silently truncated into a different query). The
/// returned spec has passed ValidateSpec.
Result<QuerySpec> QuerySpecFromFields(const JsonFieldFinder& find);

/// Convenience: decode from a parsed JSON object (`POST /v1/query` body).
Result<QuerySpec> QuerySpecFromJson(const JsonValue& object);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QUERY_SPEC_JSON_H_
