#include "core/index_manager.h"

#include <numeric>
#include <utility>

#include "common/stopwatch.h"
#include "persist/format.h"

namespace deepeverest {
namespace core {

std::string IndexManager::KeyFor(const std::string& model_name, int layer) {
  return "index/" + model_name + "/layer_" + std::to_string(layer) + ".npi";
}

bool IndexManager::IsIndexed(int layer) const {
  if (Peek(layer) != nullptr) return true;
  return options_.persist &&
         store_->Exists(KeyFor(inference_->model().name(), layer));
}

LayerIndexPtr IndexManager::Peek(int layer) const {
  common::ReaderMutexLock lock(&mu_);
  auto it = loaded_.find(layer);
  return it != loaded_.end() ? it->second : nullptr;
}

std::vector<int> IndexManager::LoadedLayers() const {
  common::ReaderMutexLock lock(&mu_);
  std::vector<int> layers;
  layers.reserve(loaded_.size());
  for (const auto& entry : loaded_) layers.push_back(entry.first);
  return layers;
}

LayerIndexPtr IndexManager::Publish(int layer, LayerIndex index) {
  auto shared = std::make_shared<const LayerIndex>(std::move(index));
  common::WriterMutexLock lock(&mu_);
  loaded_[layer] = shared;
  return shared;
}

Status IndexManager::InstallIndex(int layer, LayerIndex index) {
  if (layer < 0 || layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(layer) +
                              " out of range");
  }
  const int64_t neurons = inference_->model().NeuronCount(layer);
  if (index.num_neurons() != neurons) {
    return Status::InvalidArgument(
        "index neuron count " + std::to_string(index.num_neurons()) +
        " does not match layer " + std::to_string(layer));
  }
  Publish(layer, std::move(index));
  return Status::OK();
}

common::Mutex* IndexManager::BuildMutexFor(int layer) {
  common::MutexLock lock(&build_map_mu_);
  auto& slot = build_mu_[layer];
  if (slot == nullptr) slot = std::make_unique<common::Mutex>();
  return slot.get();
}

Status IndexManager::PersistIndex(int layer, const LayerIndex& index,
                                  double* persist_seconds) {
  Stopwatch watch;
  if (options_.persist) {
    BinaryWriter writer;
    index.Serialize(&writer);
    // Checksum envelope + write-temp/fsync/rename: a crash mid-persist
    // leaves the previous file (or a stray .tmp), never a truncated index
    // that a later session would deserialize.
    DE_RETURN_NOT_OK(
        store_->WriteAtomic(KeyFor(inference_->model().name(), layer),
                            persist::WrapChecksum(writer.buffer()),
                            options_.force_sync));
  }
  if (persist_seconds != nullptr) *persist_seconds = watch.ElapsedSeconds();
  return Status::OK();
}

Result<storage::LayerActivationMatrix> IndexManager::ComputeRows(
    int layer, uint32_t base, uint32_t count, nn::InferenceReceipt* receipt) {
  const uint64_t num_neurons =
      static_cast<uint64_t>(inference_->model().NeuronCount(layer));
  std::vector<uint32_t> ids(count);
  std::iota(ids.begin(), ids.end(), base);
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(inference_->ComputeLayer(ids, layer, &rows, receipt));
  storage::LayerActivationMatrix acts =
      storage::LayerActivationMatrix::Make(count, num_neurons);
  for (uint32_t i = 0; i < count; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), acts.MutableRow(i));
  }
  return acts;
}

Result<LayerIndexPtr> IndexManager::EnsureIndex(
    int layer, storage::LayerActivationMatrix* fresh_acts,
    PreprocessTimings* timings, nn::InferenceReceipt* receipt) {
  if (layer < 0 || layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(layer) +
                              " out of range");
  }
  // Fast path: already in memory (shared lock only).
  if (LayerIndexPtr index = Peek(layer)) return index;

  // Build-once/read-many: serialise loaders/builders of this layer while
  // other layers proceed in parallel. Whoever wins the race does the work;
  // later arrivals find the loaded entry on re-check.
  common::MutexLock build_lock(BuildMutexFor(layer));
  if (LayerIndexPtr index = Peek(layer)) return index;

  // Try disk. Any validation failure (truncation, bit rot, foreign format)
  // falls through to a rebuild instead of serving from a corrupt file.
  const std::string key = KeyFor(inference_->model().name(), layer);
  if (options_.persist && store_->Exists(key)) {
    auto load = [&]() -> Result<LayerIndex> {
      DE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, store_->Read(key));
      DE_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          persist::UnwrapChecksum(bytes, "index '" + key + "'"));
      BinaryReader reader(payload);
      return LayerIndex::Deserialize(&reader);
    };
    Result<LayerIndex> loaded = load();
    if (loaded.ok()) {
      return Publish(layer, std::move(*loaded));
    }
    DE_LOG_WARNING << "discarding corrupt persisted index for layer " << layer
                   << " and rebuilding: " << loaded.status().ToString();
    if (on_index_invalidated_) on_index_invalidated_(layer);
  }

  return BuildIndex(layer, fresh_acts, timings, receipt);
}

Result<LayerIndexPtr> IndexManager::BuildIndex(
    int layer, storage::LayerActivationMatrix* fresh_acts,
    PreprocessTimings* timings, nn::InferenceReceipt* receipt) {
  const uint32_t num_inputs = inference_->dataset().size();

  // 1. DNN inference over the entire dataset for this layer (§4.6 notes
  // inference restarts from the first layer every time, because only queried
  // layers are persisted — ComputeLayer does exactly that).
  Stopwatch watch;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix acts,
                      ComputeRows(layer, 0, num_inputs, receipt));
  const double inference_seconds = watch.ElapsedSeconds();

  // 2. Sort & partition: build NPI + MAI.
  watch.Reset();
  DE_ASSIGN_OR_RETURN(LayerIndex index,
                      LayerIndex::Build(acts, options_.layer_config));
  const double index_seconds = watch.ElapsedSeconds();

  // 3. Persist (checksummed, atomic).
  double persist_seconds = 0.0;
  DE_RETURN_NOT_OK(PersistIndex(layer, index, &persist_seconds));

  if (timings != nullptr) {
    timings->inference_seconds += inference_seconds;
    timings->index_seconds += index_seconds;
    timings->persist_seconds += persist_seconds;
  }
  if (fresh_acts != nullptr) *fresh_acts = std::move(acts);

  return Publish(layer, std::move(index));
}

Status IndexManager::CatchUp(int layer, uint32_t target_size,
                             nn::InferenceReceipt* receipt) {
  if (layer < 0 || layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(layer) +
                              " out of range");
  }
  common::MutexLock build_lock(BuildMutexFor(layer));
  LayerIndexPtr current = Peek(layer);
  if (current == nullptr) {
    return Status::FailedPrecondition("layer " + std::to_string(layer) +
                                      " has no loaded index to merge into");
  }
  while (current->num_inputs() < target_size) {
    const uint32_t base = current->num_inputs();
    const uint32_t count = target_size - base;
    DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix delta,
                        ComputeRows(layer, base, count, receipt));
    Result<LayerIndex> merged = current->AppendInputs(delta);
    if (!merged.ok()) {
      if (merged.status().code() != StatusCode::kFailedPrecondition) {
        return merged.status();
      }
      // Degenerate index shape that cannot take appends: rebuild wholesale
      // at the target size (rare; only single-partition MAI configs).
      DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix all,
                          ComputeRows(layer, 0, target_size, receipt));
      merged = LayerIndex::Build(all, options_.layer_config);
      DE_RETURN_NOT_OK(merged.status());
    }
    DE_RETURN_NOT_OK(PersistIndex(layer, *merged, nullptr));
    current = Publish(layer, std::move(*merged));
  }
  return Status::OK();
}

Status IndexManager::PreprocessAllLayers(PreprocessTimings* timings) {
  for (int layer = 0; layer < inference_->model().num_layers(); ++layer) {
    if (IsLoaded(layer)) continue;
    auto result = EnsureIndex(layer, nullptr, timings);
    DE_RETURN_NOT_OK(result.status());
  }
  return Status::OK();
}

Result<uint64_t> IndexManager::PersistedBytes() const {
  if (!options_.persist) return uint64_t{0};
  uint64_t total = 0;
  DE_ASSIGN_OR_RETURN(std::vector<std::string> keys, store_->ListKeys());
  for (const std::string& key : keys) {
    if (key.rfind("index/", 0) == 0) {
      DE_ASSIGN_OR_RETURN(uint64_t size, store_->SizeOf(key));
      total += size;
    }
  }
  return total;
}

}  // namespace core
}  // namespace deepeverest
