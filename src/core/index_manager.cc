#include "core/index_manager.h"

#include <numeric>

#include "common/stopwatch.h"

namespace deepeverest {
namespace core {

std::string IndexManager::KeyFor(const std::string& model_name, int layer) {
  return "index/" + model_name + "/layer_" + std::to_string(layer) + ".npi";
}

bool IndexManager::IsIndexed(int layer) const {
  if (FindLoaded(layer) != nullptr) return true;
  return options_.persist &&
         store_->Exists(KeyFor(inference_->model().name(), layer));
}

const LayerIndex* IndexManager::FindLoaded(int layer) const {
  common::ReaderMutexLock lock(&mu_);
  auto it = loaded_.find(layer);
  return it != loaded_.end() ? &it->second : nullptr;
}

common::Mutex* IndexManager::BuildMutexFor(int layer) {
  common::MutexLock lock(&build_map_mu_);
  auto& slot = build_mu_[layer];
  if (slot == nullptr) slot = std::make_unique<common::Mutex>();
  return slot.get();
}

Result<const LayerIndex*> IndexManager::EnsureIndex(
    int layer, storage::LayerActivationMatrix* fresh_acts,
    PreprocessTimings* timings, nn::InferenceReceipt* receipt) {
  if (layer < 0 || layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(layer) +
                              " out of range");
  }
  // Fast path: already in memory (shared lock only).
  if (const LayerIndex* index = FindLoaded(layer)) return index;

  // Build-once/read-many: serialise loaders/builders of this layer while
  // other layers proceed in parallel. Whoever wins the race does the work;
  // later arrivals find the loaded entry on re-check.
  common::MutexLock build_lock(BuildMutexFor(layer));
  if (const LayerIndex* index = FindLoaded(layer)) return index;

  // Try disk.
  const std::string key = KeyFor(inference_->model().name(), layer);
  if (options_.persist && store_->Exists(key)) {
    DE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, store_->Read(key));
    BinaryReader reader(bytes);
    DE_ASSIGN_OR_RETURN(LayerIndex index, LayerIndex::Deserialize(&reader));
    common::WriterMutexLock lock(&mu_);
    auto [pos, inserted] = loaded_.emplace(layer, std::move(index));
    DE_CHECK(inserted);
    return &pos->second;
  }

  return BuildIndex(layer, fresh_acts, timings, receipt);
}

Result<const LayerIndex*> IndexManager::BuildIndex(
    int layer, storage::LayerActivationMatrix* fresh_acts,
    PreprocessTimings* timings, nn::InferenceReceipt* receipt) {
  const uint32_t num_inputs = inference_->dataset().size();
  const uint64_t num_neurons =
      static_cast<uint64_t>(inference_->model().NeuronCount(layer));

  // 1. DNN inference over the entire dataset for this layer (§4.6 notes
  // inference restarts from the first layer every time, because only queried
  // layers are persisted — ComputeLayer does exactly that).
  Stopwatch watch;
  std::vector<uint32_t> ids(num_inputs);
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(inference_->ComputeLayer(ids, layer, &rows, receipt));
  storage::LayerActivationMatrix acts =
      storage::LayerActivationMatrix::Make(num_inputs, num_neurons);
  for (uint32_t id = 0; id < num_inputs; ++id) {
    std::copy(rows[id].begin(), rows[id].end(), acts.MutableRow(id));
  }
  const double inference_seconds = watch.ElapsedSeconds();

  // 2. Sort & partition: build NPI + MAI.
  watch.Reset();
  DE_ASSIGN_OR_RETURN(LayerIndex index,
                      LayerIndex::Build(acts, options_.layer_config));
  const double index_seconds = watch.ElapsedSeconds();

  // 3. Persist.
  watch.Reset();
  if (options_.persist) {
    BinaryWriter writer;
    index.Serialize(&writer);
    DE_RETURN_NOT_OK(
        store_->Write(KeyFor(inference_->model().name(), layer),
                      writer.buffer(), options_.force_sync));
  }
  const double persist_seconds = watch.ElapsedSeconds();

  if (timings != nullptr) {
    timings->inference_seconds += inference_seconds;
    timings->index_seconds += index_seconds;
    timings->persist_seconds += persist_seconds;
  }
  if (fresh_acts != nullptr) *fresh_acts = std::move(acts);

  common::WriterMutexLock lock(&mu_);
  auto [pos, inserted] = loaded_.emplace(layer, std::move(index));
  DE_CHECK(inserted);
  return &pos->second;
}

Status IndexManager::PreprocessAllLayers(PreprocessTimings* timings) {
  for (int layer = 0; layer < inference_->model().num_layers(); ++layer) {
    if (IsLoaded(layer)) continue;
    auto result = EnsureIndex(layer, nullptr, timings);
    DE_RETURN_NOT_OK(result.status());
  }
  return Status::OK();
}

Result<uint64_t> IndexManager::PersistedBytes() const {
  if (!options_.persist) return uint64_t{0};
  uint64_t total = 0;
  DE_ASSIGN_OR_RETURN(std::vector<std::string> keys, store_->ListKeys());
  for (const std::string& key : keys) {
    if (key.rfind("index/", 0) == 0) {
      DE_ASSIGN_OR_RETURN(uint64_t size, store_->SizeOf(key));
      total += size;
    }
  }
  return total;
}

}  // namespace core
}  // namespace deepeverest
