#include "core/deepeverest.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "nn/batch_scheduler.h"

namespace deepeverest {
namespace core {

DeepEverest::DeepEverest(const nn::Model* model, const data::Dataset* dataset,
                         storage::FileStore* store,
                         const DeepEverestOptions& options,
                         const SystemConfig& config)
    : model_(model),
      options_(options),
      config_(config),
      inference_(model, dataset, options.batch_size),
      index_manager_(&inference_, store,
                     IndexManagerOptions{config.ToLayerConfig(),
                                         options.persist_indexes,
                                         options.force_sync}) {
  if (options_.enable_iqa) {
    iqa_cache_ = std::make_unique<IqaCache>(options_.iqa_capacity_bytes,
                                            options_.iqa_shards);
    // When a persisted index fails validation and is rebuilt, drop the
    // layer's cached activation rows too: they are recomputable and cheap to
    // lose, and this keeps "discard corrupt derived state" a single switch.
    index_manager_.set_index_invalidation_hook(
        [this](int layer) { iqa_cache_->EraseLayer(layer); });
  }
}

Result<std::unique_ptr<DeepEverest>> DeepEverest::Create(
    const nn::Model* model, const data::Dataset* dataset,
    storage::FileStore* store, const DeepEverestOptions& options) {
  if (model == nullptr || dataset == nullptr || store == nullptr) {
    return Status::InvalidArgument("model, dataset, and store are required");
  }
  if (!model->finalized()) {
    return Status::FailedPrecondition("model must be finalized");
  }
  if (dataset->size() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.iqa_shards < 1) {
    return Status::InvalidArgument("iqa_shards must be >= 1");
  }

  int64_t total_neurons = 0;
  for (int layer = 0; layer < model->num_layers(); ++layer) {
    total_neurons += model->NeuronCount(layer);
  }
  const uint64_t full_bytes =
      static_cast<uint64_t>(total_neurons) * dataset->size() * 4;
  uint64_t budget = options.storage_budget_bytes;
  if (budget == 0) {
    if (options.storage_budget_fraction <= 0.0 ||
        options.storage_budget_fraction > 1.0) {
      return Status::InvalidArgument(
          "storage_budget_fraction must be in (0, 1]");
    }
    budget = static_cast<uint64_t>(options.storage_budget_fraction *
                                   static_cast<double>(full_bytes));
  }

  SystemConfig config = SelectConfig(budget, options.batch_size,
                                     dataset->size(), total_neurons);
  if (options.num_partitions_override > 0) {
    config.num_partitions = options.num_partitions_override;
  }
  if (options.mai_ratio_override >= 0.0) {
    if (options.mai_ratio_override > 1.0) {
      return Status::InvalidArgument("mai_ratio_override must be <= 1");
    }
    config.mai_ratio = options.mai_ratio_override;
  }

  return std::unique_ptr<DeepEverest>(
      new DeepEverest(model, dataset, store, options, config));
}

uint64_t DeepEverest::AnalyticIndexBytes() const {
  int64_t total_neurons = 0;
  for (int layer = 0; layer < model_->num_layers(); ++layer) {
    total_neurons += model_->NeuronCount(layer);
  }
  const uint32_t num_inputs = inference_.dataset().size();
  return NpiCostBytes(total_neurons, num_inputs, config_.num_partitions) +
         MaiCostBytes(total_neurons, num_inputs, config_.mai_ratio);
}

uint64_t DeepEverest::FullMaterializationBytes() const {
  int64_t total_neurons = 0;
  for (int layer = 0; layer < model_->num_layers(); ++layer) {
    total_neurons += model_->NeuronCount(layer);
  }
  return static_cast<uint64_t>(total_neurons) * inference_.dataset().size() *
         4;
}

namespace {

// Validated before the index ensure: the §4.6 fresh-scan path reads
// activation rows with unchecked indexing (NtaEngine re-validates on its own
// path, but by then an out-of-range neuron would already have been scanned).
Status ValidateGroup(const nn::Model& model, const NeuronGroup& group) {
  if (group.neurons.empty()) {
    return Status::InvalidArgument("neuron group is empty");
  }
  if (group.layer < 0 || group.layer >= model.num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(group.layer) +
                              " out of range");
  }
  const int64_t layer_neurons = model.NeuronCount(group.layer);
  for (int64_t n : group.neurons) {
    if (n < 0 || n >= layer_neurons) {
      return Status::OutOfRange("neuron " + std::to_string(n) +
                                " out of range for layer " +
                                std::to_string(group.layer));
    }
  }
  return Status::OK();
}

/// Charges a Step's wall time to the execution's active-time accumulator on
/// every exit path (mirrors NtaExecution's accounting: parked time between
/// Step calls costs the query nothing).
class ActiveTimeCharge {
 public:
  explicit ActiveTimeCharge(double* acc) : acc_(acc) {}
  ~ActiveTimeCharge() { *acc_ += watch_.ElapsedSeconds(); }
  ActiveTimeCharge(const ActiveTimeCharge&) = delete;
  ActiveTimeCharge& operator=(const ActiveTimeCharge&) = delete;

 private:
  Stopwatch watch_;
  double* acc_;
};

}  // namespace

/// Whole-query phase machine. Coarse phases (resolution, index ensure) run
/// as single steps; the NTA phase delegates one round per Step to the inner
/// NtaExecution. Everything needed to continue after a park — the resolved
/// group, the index pointer (owned by the IndexManager, stable), the NTA
/// engine and its execution, the open "nta" span — lives here.
struct QueryExecution::Impl {
  enum class Phase {
    kResolve,      // derived-group resolution (≤ one inference pass)
    kEnsureIndex,  // incremental index ensure; may answer via fresh scan
    kNta,          // one NTA round per Step
    kDone,
  };

  Impl(DeepEverest* system_in, const QuerySpec& spec_in, QueryContext* ctx_in)
      : system(system_in),
        spec(spec_in),
        ctx(ctx_in),
        start_receipt(ctx_in->receipt) {}

  DeepEverest* system;
  QuerySpec spec;
  QueryContext* ctx;
  nn::InferenceReceipt start_receipt;

  Phase phase = Phase::kResolve;
  Status error = Status::OK();
  NeuronGroup group;
  // The query's pinned index version: holding the shared_ptr keeps this
  // exact index alive even if ingest swaps a newer one into the
  // IndexManager mid-query, so every round sees one consistent dataset
  // prefix and the answer is bit-identical to a fresh scan over it.
  LayerIndexPtr index_ref;
  // The NTA engine must outlive its execution across steps (the old code
  // stack-allocated it inside a run-to-completion frame).
  std::unique_ptr<NtaEngine> engine;
  std::unique_ptr<NtaExecution> nta;
  int nta_span = -1;  // open "nta" span while the NTA phase runs
  TopKResult result;  // valid once `have_result`
  bool have_result = false;
  double active_seconds = 0.0;

  void EndNtaSpan() {
    if (nta_span >= 0 && ctx->trace != nullptr) ctx->trace->EndSpan(nta_span);
    nta_span = -1;
  }

  Status StepResolve() {
    group.layer = spec.layer;
    if (spec.has_derived_group()) {
      // Resolution runs under the query's context: metered into its
      // receipt, routed through its batch scheduler, aborted by
      // deadline/cancel.
      const int64_t reference =
          spec.top_of >= 0 ? spec.top_of : spec.target_id;
      SpanScope span(ctx->trace.get(), "resolve_group");
      DE_ASSIGN_OR_RETURN(
          group.neurons,
          system->MaximallyActivatedNeurons(static_cast<uint32_t>(reference),
                                            spec.layer, spec.top_neurons,
                                            ctx));
      span.AddInt("inputs_run",
                  ctx->receipt.inputs_run - start_receipt.inputs_run);
    } else {
      group.neurons = spec.neurons;
    }
    phase = Phase::kEnsureIndex;
    return Status::OK();
  }

  Status StepEnsureIndex() {
    DE_RETURN_NOT_OK(ValidateGroup(system->inference()->model(), group));
    const bool has_target_id =
        spec.kind == QuerySpec::Kind::kMostSimilar && spec.target_id >= 0;
    if (has_target_id && static_cast<uint64_t>(spec.target_id) >=
                             system->inference()->dataset().size()) {
      return Status::OutOfRange("target input out of range");
    }
    if (!spec.target_activations.empty() &&
        spec.target_activations.size() != group.neurons.size()) {
      return Status::InvalidArgument("target activation count mismatch");
    }
    DE_RETURN_NOT_OK(ctx->CheckRunnable());

    // Per-query receipt metering via the context: any index-build inference
    // is charged to the query that actually performed the build (§4.6
    // trigger); NTA meters its own calls into the same receipt. Unlike a
    // before/after stats() delta, concurrent queries on the shared engine
    // can never leak into these numbers.
    const nn::InferenceReceipt ensure_start = ctx->receipt;
    storage::LayerActivationMatrix fresh;
    {
      SpanScope span(ctx->trace.get(), "index.ensure");
      DE_ASSIGN_OR_RETURN(index_ref, system->index_manager()->EnsureIndex(
                                         group.layer, &fresh, nullptr,
                                         &ctx->receipt));
      span.AddInt("inputs_run",
                  ctx->receipt.inputs_run - ensure_start.inputs_run);
      span.AddInt("built", fresh.num_inputs > 0 ? 1 : 0);
    }
    // Pin the dataset version this query answers over. Candidates only ever
    // come from the pinned index, so the result covers exactly the prefix
    // [0, pinned_dataset_version) even while ingest grows the dataset.
    ctx->pinned_dataset_version = index_ref->num_inputs();
    // The build (or the wait on another thread's build) may have consumed
    // the whole deadline budget; abort before scanning or running NTA.
    DE_RETURN_NOT_OK(ctx->CheckRunnable());

    NtaOptions options;
    options.k = spec.k;
    options.theta = spec.theta;
    // Canonical serving mode: tie-complete termination makes the result
    // bit-identical to a fresh activation scan even on exact value ties at
    // the k-th boundary, so every entry point — and every park/resume
    // schedule — returns the same answer.
    options.tie_complete = true;
    options.use_mai = system->options().enable_mai;
    DE_ASSIGN_OR_RETURN(options.dist, MakeDistance(spec.distance));

    // Answer from the freshly computed matrix when possible (§4.6). A
    // most-similar target ingested after the build started is not covered by
    // `fresh`; fall through to NTA, whose prologue computes the target's
    // activations via inference.
    const bool target_in_fresh =
        !has_target_id ||
        static_cast<uint64_t>(spec.target_id) < fresh.num_inputs;
    if (fresh.num_inputs > 0 && target_in_fresh) {
      // Incremental indexing (§4.6): the index was just built, which
      // computed every input's activations anyway — answer the triggering
      // query from them directly.
      SpanScope span(ctx->trace.get(), "scan");
      if (spec.kind == QuerySpec::Kind::kHighest) {
        result = ScanHighest(fresh, group.neurons, spec.k, options.dist);
      } else if (has_target_id) {
        const uint32_t target_id = static_cast<uint32_t>(spec.target_id);
        std::vector<float> target_acts(group.neurons.size());
        for (size_t i = 0; i < group.neurons.size(); ++i) {
          target_acts[i] =
              fresh.At(target_id, static_cast<uint64_t>(group.neurons[i]));
        }
        result = ScanMostSimilar(fresh, group.neurons, target_acts, spec.k,
                                 options.dist, /*exclude_target=*/true,
                                 target_id);
      } else {
        result = ScanMostSimilar(fresh, group.neurons,
                                 spec.target_activations, spec.k,
                                 options.dist, /*exclude_target=*/false, 0);
      }
      have_result = true;
      phase = Phase::kDone;
      return Status::OK();
    }

    // The NTA phase spans many Steps; keep its span open across them.
    if (ctx->trace != nullptr) nta_span = ctx->trace->StartSpan("nta");
    engine = std::make_unique<NtaEngine>(system->inference(), index_ref.get());
    Result<std::unique_ptr<NtaExecution>> begun =
        spec.kind == QuerySpec::Kind::kHighest
            ? engine->BeginHighest(group, options, ctx)
        : has_target_id
            ? engine->BeginMostSimilarTo(
                  group, static_cast<uint32_t>(spec.target_id), options, ctx)
            : engine->BeginMostSimilar(group, spec.target_activations,
                                       options, ctx);
    if (!begun.ok()) return begun.status();
    nta = std::move(begun).value();
    phase = Phase::kNta;
    return Status::OK();
  }

  Status StepNta() {
    DE_RETURN_NOT_OK(nta->Step());
    if (!nta->done()) return Status::OK();
    Result<TopKResult> taken = nta->TakeResult();
    EndNtaSpan();
    if (!taken.ok()) return taken.status();
    result = std::move(taken).value();
    have_result = true;
    phase = Phase::kDone;
    return Status::OK();
  }
};

QueryExecution::QueryExecution(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

QueryExecution::~QueryExecution() {
  // Abandoned mid-NTA (e.g. service shutdown with a parked query): close
  // the open span so the trace stays well-formed.
  if (impl_ != nullptr) impl_->EndNtaSpan();
}

bool QueryExecution::done() const {
  return impl_->phase == Impl::Phase::kDone;
}

Status QueryExecution::Step() {
  Impl& im = *impl_;
  if (im.phase == Impl::Phase::kDone) return im.error;
  ActiveTimeCharge charge(&im.active_seconds);
  Status s = Status::OK();
  switch (im.phase) {
    case Impl::Phase::kResolve:
      s = im.StepResolve();
      break;
    case Impl::Phase::kEnsureIndex:
      s = im.StepEnsureIndex();
      break;
    case Impl::Phase::kNta:
      s = im.StepNta();
      break;
    case Impl::Phase::kDone:
      break;
  }
  if (!s.ok()) {
    im.EndNtaSpan();
    im.error = s;
    im.phase = Impl::Phase::kDone;
  }
  return s;
}

Status QueryExecution::RunUntil(const std::function<bool()>& should_yield) {
  while (!done()) {
    DE_RETURN_NOT_OK(Step());
    if (!done() && should_yield && should_yield()) return Status::OK();
  }
  return Status::OK();
}

Result<TopKResult> QueryExecution::Run() {
  while (!done()) {
    const Status s = Step();
    if (!s.ok()) return s;
  }
  return TakeResult();
}

Result<TopKResult> QueryExecution::TakeResult() {
  Impl& im = *impl_;
  if (im.phase != Impl::Phase::kDone) {
    return Status::FailedPrecondition("query execution is not finished");
  }
  if (!im.error.ok()) return im.error;
  TopKResult result = std::move(im.result);
  // Receipt delta over the whole execution: derived-group resolution and
  // index-build inference are part of the query's exact attribution.
  QueryStats& stats = result.stats;
  stats.inputs_run =
      im.ctx->receipt.inputs_run - im.start_receipt.inputs_run;
  stats.batches_run =
      im.ctx->receipt.batches_run - im.start_receipt.batches_run;
  stats.simulated_gpu_seconds = im.ctx->receipt.simulated_gpu_seconds -
                                im.start_receipt.simulated_gpu_seconds;
  stats.wall_seconds = im.active_seconds;
  stats.dataset_version = im.ctx->pinned_dataset_version;
  return result;
}

Result<std::unique_ptr<QueryExecution>> DeepEverest::BeginSpec(
    const QuerySpec& spec, QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateSpec(spec));
  if (ctx == nullptr) {
    return Status::InvalidArgument(
        "a QueryContext is required to begin an execution");
  }
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  // Engine-direct callers get the spec's progress sink too (the service
  // moves the sink into the context at admission instead, leaving the
  // spec's empty — a context that already has a sink keeps it).
  if (spec.on_progress && !ctx->on_progress) {
    ctx->on_progress = spec.on_progress;
  }
  std::unique_ptr<QueryExecution::Impl> impl(
      new QueryExecution::Impl(this, spec, ctx));
  return std::unique_ptr<QueryExecution>(new QueryExecution(std::move(impl)));
}

Result<TopKResult> DeepEverest::ExecuteSpec(const QuerySpec& spec,
                                            QueryContext* ctx) {
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_ASSIGN_OR_RETURN(std::unique_ptr<QueryExecution> execution,
                      BeginSpec(spec, ctx));
  return execution->Run();
}

Result<TopKResult> DeepEverest::TopKHighest(const NeuronGroup& group, int k,
                                            DistanceKind distance) {
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = k;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  spec.distance = distance;
  return ExecuteSpec(spec);
}

Result<TopKResult> DeepEverest::TopKMostSimilar(uint32_t target_id,
                                                const NeuronGroup& group,
                                                int k, DistanceKind distance) {
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kMostSimilar;
  spec.k = k;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  spec.target_id = static_cast<int64_t>(target_id);
  spec.distance = distance;
  return ExecuteSpec(spec);
}

Result<std::vector<int64_t>> DeepEverest::MaximallyActivatedNeurons(
    uint32_t target_id, int layer, int m) {
  QueryContext local_ctx;
  return MaximallyActivatedNeurons(target_id, layer, m, &local_ctx);
}

Result<std::vector<int64_t>> DeepEverest::MaximallyActivatedNeurons(
    uint32_t target_id, int layer, int m, QueryContext* ctx) {
  if (target_id >= inference_.dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  if (layer < 0 || layer >= model_->num_layers()) {
    return Status::OutOfRange("layer out of range");
  }
  if (m < 1) return Status::InvalidArgument("m must be >= 1");
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  DE_RETURN_NOT_OK(ctx->CheckRunnable());
  const int64_t neurons = model_->NeuronCount(layer);
  if (m > neurons) m = static_cast<int>(neurons);

  // Serve from the IQA cache when a prior query already computed this row.
  std::vector<float> row;
  const bool cached =
      ctx->iqa != nullptr && ctx->iqa->Lookup(layer, target_id, &row);
  if (!cached) {
    std::vector<std::vector<float>> rows;
    SpanScope span(ctx->trace.get(), "compute_layer");
    const nn::InferenceReceipt before = ctx->receipt;
    if (ctx->scheduler != nullptr) {
      DE_RETURN_NOT_OK(ctx->scheduler->ComputeLayer(
          {target_id}, layer, &rows, &ctx->receipt, ctx->qos));
    } else {
      DE_RETURN_NOT_OK(
          inference_.ComputeLayer({target_id}, layer, &rows, &ctx->receipt));
    }
    span.AddInt("inputs", 1);
    span.AddDouble("batches_share",
                   ctx->receipt.batches_run - before.batches_run);
    span.AddDouble(
        "gpu_seconds",
        ctx->receipt.simulated_gpu_seconds - before.simulated_gpu_seconds);
    row = std::move(rows[0]);
    if (ctx->iqa != nullptr) {
      ctx->iqa->Insert(layer, target_id, row);
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(neurons));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::partial_sort(order.begin(), order.begin() + m, order.end(),
                    [&](int64_t a, int64_t b) {
                      const float va = row[static_cast<size_t>(a)];
                      const float vb = row[static_cast<size_t>(b)];
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  order.resize(static_cast<size_t>(m));
  return order;
}

Status DeepEverest::PreprocessAllLayers(PreprocessTimings* timings) {
  return index_manager_.PreprocessAllLayers(timings);
}

}  // namespace core
}  // namespace deepeverest
