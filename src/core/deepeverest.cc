#include "core/deepeverest.h"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "nn/batch_scheduler.h"

namespace deepeverest {
namespace core {

DeepEverest::DeepEverest(const nn::Model* model, const data::Dataset* dataset,
                         storage::FileStore* store,
                         const DeepEverestOptions& options,
                         const SystemConfig& config)
    : model_(model),
      options_(options),
      config_(config),
      inference_(model, dataset, options.batch_size),
      index_manager_(&inference_, store,
                     IndexManagerOptions{config.ToLayerConfig(),
                                         options.persist_indexes,
                                         options.force_sync}) {
  if (options_.enable_iqa) {
    iqa_cache_ = std::make_unique<IqaCache>(options_.iqa_capacity_bytes,
                                            options_.iqa_shards);
  }
}

Result<std::unique_ptr<DeepEverest>> DeepEverest::Create(
    const nn::Model* model, const data::Dataset* dataset,
    storage::FileStore* store, const DeepEverestOptions& options) {
  if (model == nullptr || dataset == nullptr || store == nullptr) {
    return Status::InvalidArgument("model, dataset, and store are required");
  }
  if (!model->finalized()) {
    return Status::FailedPrecondition("model must be finalized");
  }
  if (dataset->size() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.iqa_shards < 1) {
    return Status::InvalidArgument("iqa_shards must be >= 1");
  }

  int64_t total_neurons = 0;
  for (int layer = 0; layer < model->num_layers(); ++layer) {
    total_neurons += model->NeuronCount(layer);
  }
  const uint64_t full_bytes =
      static_cast<uint64_t>(total_neurons) * dataset->size() * 4;
  uint64_t budget = options.storage_budget_bytes;
  if (budget == 0) {
    if (options.storage_budget_fraction <= 0.0 ||
        options.storage_budget_fraction > 1.0) {
      return Status::InvalidArgument(
          "storage_budget_fraction must be in (0, 1]");
    }
    budget = static_cast<uint64_t>(options.storage_budget_fraction *
                                   static_cast<double>(full_bytes));
  }

  SystemConfig config = SelectConfig(budget, options.batch_size,
                                     dataset->size(), total_neurons);
  if (options.num_partitions_override > 0) {
    config.num_partitions = options.num_partitions_override;
  }
  if (options.mai_ratio_override >= 0.0) {
    if (options.mai_ratio_override > 1.0) {
      return Status::InvalidArgument("mai_ratio_override must be <= 1");
    }
    config.mai_ratio = options.mai_ratio_override;
  }

  return std::unique_ptr<DeepEverest>(
      new DeepEverest(model, dataset, store, options, config));
}

uint64_t DeepEverest::AnalyticIndexBytes() const {
  int64_t total_neurons = 0;
  for (int layer = 0; layer < model_->num_layers(); ++layer) {
    total_neurons += model_->NeuronCount(layer);
  }
  const uint32_t num_inputs = inference_.dataset().size();
  return NpiCostBytes(total_neurons, num_inputs, config_.num_partitions) +
         MaiCostBytes(total_neurons, num_inputs, config_.mai_ratio);
}

uint64_t DeepEverest::FullMaterializationBytes() const {
  int64_t total_neurons = 0;
  for (int layer = 0; layer < model_->num_layers(); ++layer) {
    total_neurons += model_->NeuronCount(layer);
  }
  return static_cast<uint64_t>(total_neurons) * inference_.dataset().size() *
         4;
}

namespace {

// Validated before Execute: the §4.6 fresh-scan path reads activation rows
// with unchecked indexing (NtaEngine re-validates on its own path, but by
// then an out-of-range neuron would already have been scanned).
Status ValidateGroup(const nn::Model& model, const NeuronGroup& group) {
  if (group.neurons.empty()) {
    return Status::InvalidArgument("neuron group is empty");
  }
  if (group.layer < 0 || group.layer >= model.num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(group.layer) +
                              " out of range");
  }
  const int64_t layer_neurons = model.NeuronCount(group.layer);
  for (int64_t n : group.neurons) {
    if (n < 0 || n >= layer_neurons) {
      return Status::OutOfRange("neuron " + std::to_string(n) +
                                " out of range for layer " +
                                std::to_string(group.layer));
    }
  }
  return Status::OK();
}

}  // namespace

template <typename NtaFn, typename ScanFn>
Result<TopKResult> DeepEverest::Execute(int layer, QueryContext* ctx,
                                        NtaFn&& nta_fn, ScanFn&& scan_fn) {
  Stopwatch watch;
  DE_RETURN_NOT_OK(ctx->CheckRunnable());
  // Per-query receipt metering via the context: any index-build inference
  // is charged to the query that actually performed the build (§4.6
  // trigger); NTA meters its own calls into the same receipt. Unlike the
  // old before/after stats() delta, concurrent queries on the shared engine
  // can never leak into these numbers.
  const nn::InferenceReceipt start_receipt = ctx->receipt;
  storage::LayerActivationMatrix fresh;
  const LayerIndex* index = nullptr;
  {
    SpanScope span(ctx->trace.get(), "index.ensure");
    DE_ASSIGN_OR_RETURN(
        index, index_manager_.EnsureIndex(layer, &fresh, nullptr,
                                          &ctx->receipt));
    span.AddInt("inputs_run",
                ctx->receipt.inputs_run - start_receipt.inputs_run);
    span.AddInt("built", fresh.num_inputs > 0 ? 1 : 0);
  }
  // The build (or the wait on another thread's build) may have consumed the
  // whole deadline budget; abort before scanning or running NTA.
  DE_RETURN_NOT_OK(ctx->CheckRunnable());

  Result<TopKResult> result = [&]() -> Result<TopKResult> {
    if (fresh.num_inputs > 0) {
      // Incremental indexing (§4.6): the index was just built, which
      // computed every input's activations anyway — answer the triggering
      // query from them directly.
      SpanScope span(ctx->trace.get(), "scan");
      return scan_fn(fresh);
    }
    SpanScope span(ctx->trace.get(), "nta");
    NtaEngine nta(&inference_, index);
    return nta_fn(&nta);
  }();
  if (!result.ok()) return result;

  // Whole-query inference cost = the context receipt's delta over this
  // call: index build + NTA (the scan path runs no inference of its own).
  QueryStats& stats = result.value().stats;
  stats.inputs_run = ctx->receipt.inputs_run - start_receipt.inputs_run;
  stats.batches_run = ctx->receipt.batches_run - start_receipt.batches_run;
  stats.simulated_gpu_seconds =
      ctx->receipt.simulated_gpu_seconds - start_receipt.simulated_gpu_seconds;
  stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<TopKResult> DeepEverest::TopKHighest(const NeuronGroup& group, int k,
                                            DistancePtr dist) {
  NtaOptions options;
  options.k = k;
  options.dist = std::move(dist);
  return TopKHighestWithOptions(group, std::move(options));
}

Result<TopKResult> DeepEverest::TopKHighestWithOptions(
    const NeuronGroup& group, NtaOptions options, QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(*model_, group));
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  options.use_mai = options.use_mai && options_.enable_mai;
  const DistancePtr dist =
      options.dist != nullptr ? options.dist : L2Distance();
  return Execute(
      group.layer, ctx,
      [&](NtaEngine* nta) { return nta->Highest(group, options, ctx); },
      [&](const storage::LayerActivationMatrix& acts) -> Result<TopKResult> {
        return ScanHighest(acts, group.neurons, options.k, dist);
      });
}

Result<TopKResult> DeepEverest::TopKMostSimilar(uint32_t target_id,
                                                const NeuronGroup& group,
                                                int k, DistancePtr dist) {
  NtaOptions options;
  options.k = k;
  options.dist = std::move(dist);
  return TopKMostSimilarWithOptions(target_id, group, std::move(options));
}

Result<TopKResult> DeepEverest::TopKMostSimilarWithOptions(
    uint32_t target_id, const NeuronGroup& group, NtaOptions options,
    QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(*model_, group));
  if (target_id >= inference_.dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  options.use_mai = options.use_mai && options_.enable_mai;
  const DistancePtr dist =
      options.dist != nullptr ? options.dist : L2Distance();
  return Execute(
      group.layer, ctx,
      [&](NtaEngine* nta) {
        return nta->MostSimilarTo(group, target_id, options, ctx);
      },
      [&](const storage::LayerActivationMatrix& acts) -> Result<TopKResult> {
        std::vector<float> target_acts(group.neurons.size());
        for (size_t i = 0; i < group.neurons.size(); ++i) {
          target_acts[i] =
              acts.At(target_id, static_cast<uint64_t>(group.neurons[i]));
        }
        return ScanMostSimilar(acts, group.neurons, target_acts, options.k,
                               dist, /*exclude_target=*/true, target_id);
      });
}

Result<TopKResult> DeepEverest::TopKMostSimilarToActivations(
    const std::vector<float>& target_acts, const NeuronGroup& group,
    NtaOptions options, QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(*model_, group));
  if (target_acts.size() != group.neurons.size()) {
    return Status::InvalidArgument("target activation count mismatch");
  }
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  options.use_mai = options.use_mai && options_.enable_mai;
  const DistancePtr dist =
      options.dist != nullptr ? options.dist : L2Distance();
  return Execute(
      group.layer, ctx,
      [&](NtaEngine* nta) {
        return nta->MostSimilar(group, target_acts, options, ctx);
      },
      [&](const storage::LayerActivationMatrix& acts) -> Result<TopKResult> {
        return ScanMostSimilar(acts, group.neurons, target_acts, options.k,
                               dist, /*exclude_target=*/false, 0);
      });
}

Result<TopKResult> DeepEverest::ExecuteSpec(const QuerySpec& spec,
                                            QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateSpec(spec));
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  // Engine-direct callers get the spec's progress sink too (the service
  // moves the sink into the context at admission instead, leaving the
  // spec's empty — a context that already has a sink keeps it).
  if (spec.on_progress && !ctx->on_progress) {
    ctx->on_progress = spec.on_progress;
  }
  Stopwatch watch;
  // Snapshot before derived-group resolution: its inference belongs to this
  // query's stats exactly like index-build inference does.
  const nn::InferenceReceipt start_receipt = ctx->receipt;

  NeuronGroup group;
  group.layer = spec.layer;
  if (spec.has_derived_group()) {
    // Resolution runs under the query's context: metered into its receipt,
    // routed through its batch scheduler, aborted by deadline/cancel.
    const int64_t reference =
        spec.top_of >= 0 ? spec.top_of : spec.target_id;
    SpanScope span(ctx->trace.get(), "resolve_group");
    DE_ASSIGN_OR_RETURN(
        group.neurons,
        MaximallyActivatedNeurons(static_cast<uint32_t>(reference),
                                  spec.layer, spec.top_neurons, ctx));
    span.AddInt("inputs_run",
                ctx->receipt.inputs_run - start_receipt.inputs_run);
  } else {
    group.neurons = spec.neurons;
  }

  NtaOptions options;
  options.k = spec.k;
  options.theta = spec.theta;
  // Canonical serving mode: tie-complete termination makes the result
  // bit-identical to a fresh activation scan even on exact value ties at
  // the k-th boundary, so every entry point returns the same answer.
  options.tie_complete = true;
  DE_ASSIGN_OR_RETURN(options.dist, MakeDistance(spec.distance));

  Result<TopKResult> result =
      spec.kind == QuerySpec::Kind::kHighest
          ? TopKHighestWithOptions(group, std::move(options), ctx)
          : TopKMostSimilarWithOptions(static_cast<uint32_t>(spec.target_id),
                                       group, std::move(options), ctx);
  if (!result.ok()) return result;

  // Recompute the receipt delta over the whole spec execution so a derived
  // group's resolution pass is part of the query's exact attribution.
  QueryStats& stats = result.value().stats;
  stats.inputs_run = ctx->receipt.inputs_run - start_receipt.inputs_run;
  stats.batches_run = ctx->receipt.batches_run - start_receipt.batches_run;
  stats.simulated_gpu_seconds = ctx->receipt.simulated_gpu_seconds -
                                start_receipt.simulated_gpu_seconds;
  stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<std::vector<int64_t>> DeepEverest::MaximallyActivatedNeurons(
    uint32_t target_id, int layer, int m) {
  QueryContext local_ctx;
  return MaximallyActivatedNeurons(target_id, layer, m, &local_ctx);
}

Result<std::vector<int64_t>> DeepEverest::MaximallyActivatedNeurons(
    uint32_t target_id, int layer, int m, QueryContext* ctx) {
  if (target_id >= inference_.dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  if (layer < 0 || layer >= model_->num_layers()) {
    return Status::OutOfRange("layer out of range");
  }
  if (m < 1) return Status::InvalidArgument("m must be >= 1");
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  if (ctx->iqa == nullptr) ctx->iqa = iqa_cache_.get();
  DE_RETURN_NOT_OK(ctx->CheckRunnable());
  const int64_t neurons = model_->NeuronCount(layer);
  if (m > neurons) m = static_cast<int>(neurons);

  // Serve from the IQA cache when a prior query already computed this row.
  std::vector<float> row;
  const bool cached =
      ctx->iqa != nullptr && ctx->iqa->Lookup(layer, target_id, &row);
  if (!cached) {
    std::vector<std::vector<float>> rows;
    SpanScope span(ctx->trace.get(), "compute_layer");
    const nn::InferenceReceipt before = ctx->receipt;
    if (ctx->scheduler != nullptr) {
      DE_RETURN_NOT_OK(ctx->scheduler->ComputeLayer(
          {target_id}, layer, &rows, &ctx->receipt, ctx->qos));
    } else {
      DE_RETURN_NOT_OK(
          inference_.ComputeLayer({target_id}, layer, &rows, &ctx->receipt));
    }
    span.AddInt("inputs", 1);
    span.AddDouble("batches_share",
                   ctx->receipt.batches_run - before.batches_run);
    span.AddDouble(
        "gpu_seconds",
        ctx->receipt.simulated_gpu_seconds - before.simulated_gpu_seconds);
    row = std::move(rows[0]);
    if (ctx->iqa != nullptr) {
      ctx->iqa->Insert(layer, target_id, row);
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(neurons));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::partial_sort(order.begin(), order.begin() + m, order.end(),
                    [&](int64_t a, int64_t b) {
                      const float va = row[static_cast<size_t>(a)];
                      const float vb = row[static_cast<size_t>(b)];
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  order.resize(static_cast<size_t>(m));
  return order;
}

Status DeepEverest::PreprocessAllLayers(PreprocessTimings* timings) {
  return index_manager_.PreprocessAllLayers(timings);
}

}  // namespace core
}  // namespace deepeverest
