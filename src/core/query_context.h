#ifndef DEEPEVEREST_CORE_QUERY_CONTEXT_H_
#define DEEPEVEREST_CORE_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/qos.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/query.h"
#include "nn/inference.h"

namespace deepeverest {
namespace nn {
class BatchingInferenceScheduler;
}  // namespace nn

namespace core {

class IqaCache;

/// \brief Per-round progress snapshot for incremental result return and
/// user-driven early stopping (paper section 6).
struct NtaProgress {
  int64_t round = 0;
  /// Current threshold t: no unseen input can beat it.
  double threshold = 0.0;
  /// Worst value currently in the top-k set (+inf / -inf if not yet full).
  double kth_value = 0.0;
  /// For most-similar queries: the θ such that the current top-k is a
  /// θ-approximation of the true answer (t / kth_dist, clamped to [0, 1]).
  double theta_guarantee = 0.0;
  /// Entries already *proven* to belong to the final top-k (dist <= t).
  std::vector<ResultEntry> confirmed;
};

/// \brief Per-query execution context, created once at admission and
/// threaded through every layer the query touches
/// (QueryService → DeepEverest::Execute → NtaEngine →
/// BatchingInferenceScheduler).
///
/// The context carries everything that belongs to ONE query execution and
/// to nothing else: its QoS class, absolute deadline, cooperative
/// cancellation flag, the receipt accumulating its exact inference cost,
/// its progress sink, and the shared services it routes through (IQA cache,
/// cross-query batch scheduler). Query *parameters* (k, θ, distance,
/// tie-completeness) stay in NtaOptions; the split is what lets a future
/// RPC front-end or streaming-progress layer attach per-query state without
/// widening every engine signature again.
///
/// Lifetime/threading: a context serves exactly one query execution. The
/// executing thread owns all fields; `Cancel()` is the one cross-thread
/// entry point (an atomic flag any thread may set). The deadline must be
/// set before execution starts. NTA checks `CheckRunnable()` between
/// rounds, so expiry or cancellation aborts within one round with
/// DeadlineExceeded / Cancelled.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Where the query is in the service's scheduling lifecycle. Purely
  /// observational (exported via `/v1/stats`); the authoritative scheduling
  /// state lives under QueryService::mu_. Engine-direct executions stay
  /// kQueued/kRunning trivially.
  enum class Lifecycle : int {
    kQueued = 0,   // admitted, waiting for a worker
    kRunning = 1,  // a worker is stepping it
    kParked = 2,   // preempted mid-flight, waiting to be resumed
    kFinished = 3, // outcome decided (completed, failed, cancelled, expired)
  };

  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Client session this query belongs to (admission fairness + QoS
  /// weighting happen per session).
  uint64_t session_id = 0;
  /// QoS class driving dispatch priority and batch linger behaviour.
  QosClass qos = QosClass::kBatch;
  /// Activation cache consulted before inference (§4.7.3); engine default
  /// is filled in by DeepEverest when left null.
  IqaCache* iqa = nullptr;
  /// When set, inference routes through this shared cross-query batching
  /// scheduler instead of calling the engine directly, so co-scheduled
  /// queries fill each other's device batches (per-query stats stay exact
  /// either way — receipt metering).
  nn::BatchingInferenceScheduler* scheduler = nullptr;
  /// Invoked after each NTA round; return false to stop early with the
  /// current (θ-guaranteed) top-k.
  std::function<bool(const NtaProgress&)> on_progress;
  /// Exact inference cost accumulated on behalf of this query across every
  /// engine/scheduler call it makes (index builds included).
  nn::InferenceReceipt receipt;
  /// Per-query trace the execution layers append spans to (admission/queue
  /// wait, dispatch, NTA rounds, ComputeLayer calls, serialization). Null —
  /// the default for engine-direct callers — makes every instrumentation
  /// site a no-op; the service attaches one per query at admission. Shared
  /// because the trace outlives the context in the recent-trace ring that
  /// backs `GET /v1/trace/<id>`.
  std::shared_ptr<Trace> trace;
  /// Dataset version (input count) this query's index was pinned at, filled
  /// in when the execution resolves its index. The answer covers exactly the
  /// prefix [0, pinned_dataset_version) even if ingest grows the dataset
  /// while the query runs.
  uint32_t pinned_dataset_version = 0;

  /// Absolute deadline. Unset (the default) means no deadline.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }
  /// Convenience: deadline `seconds` from now. Values are clamped to
  /// [0, ~3 years]: a float→int64 cast of a huge nanosecond count would be
  /// undefined behaviour, and callers (the HTTP front-end) feed this from
  /// untrusted wire input. NaN clamps to 0 (immediately due).
  void SetDeadlineAfter(double seconds) {
    double clamped = seconds;
    if (!(clamped > 0.0)) clamped = 0.0;
    if (clamped > 1e8) clamped = 1e8;
    deadline_ = Clock::now() + std::chrono::nanoseconds(static_cast<int64_t>(
                                   clamped * 1e9));
  }
  void ClearDeadline() { deadline_ = Clock::time_point::max(); }
  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  Clock::time_point deadline() const { return deadline_; }
  bool DeadlineExpired() const {
    return has_deadline() && Clock::now() >= deadline_;
  }
  /// Seconds until the deadline (negative once expired); +inf without one.
  double RemainingSeconds() const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

  /// Cooperative cancellation: any thread may request it; the executing
  /// query aborts with Cancelled at its next between-rounds check.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Lifecycle transitions are published by whichever worker owns the query
  /// at the time (ownership handoffs are ordered by the service's mutex);
  /// readers (stats snapshots) take a lock-free acquire snapshot that may
  /// trail the authoritative state by one transition.
  void set_lifecycle(Lifecycle state) {
    lifecycle_.store(state, std::memory_order_release);
  }
  Lifecycle lifecycle() const {
    return lifecycle_.load(std::memory_order_acquire);
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded
  /// otherwise. This is the check NTA runs between rounds.
  Status CheckRunnable() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (DeadlineExpired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  Clock::time_point deadline_ = Clock::time_point::max();
  std::atomic<bool> cancelled_{false};
  std::atomic<Lifecycle> lifecycle_{Lifecycle::kQueued};
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QUERY_CONTEXT_H_
