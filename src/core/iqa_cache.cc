#include "core/iqa_cache.h"

#include <algorithm>

namespace deepeverest {
namespace core {
namespace {

// splitmix64: decorrelates the (layer, input) key bits so consecutive input
// ids spread evenly across shards.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

IqaCache::IqaCache(uint64_t capacity_bytes, int num_shards,
                   EvictionPolicy policy)
    : capacity_bytes_(capacity_bytes), policy_(policy) {
  DE_CHECK_GT(num_shards, 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  const uint64_t per_shard =
      std::max<uint64_t>(1, capacity_bytes / static_cast<uint64_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity_bytes = per_shard;
    shards_.push_back(std::move(shard));
  }
}

IqaCache::Shard& IqaCache::ShardFor(uint64_t key) {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[Mix(key) % shards_.size()];
}

template <typename Consumer>
bool IqaCache::LookupInternal(int layer, uint32_t input_id,
                              Consumer&& consume) {
  const uint64_t key = KeyOf(layer, input_id);
  Shard& shard = ShardFor(key);
  common::MutexLock lock(&shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  TouchLocked(&shard, key, &it->second);
  consume(it->second.row);
  return true;
}

bool IqaCache::Lookup(int layer, uint32_t input_id,
                      std::vector<float>* row_out) {
  return LookupInternal(layer, input_id, [row_out](
                                             const std::vector<float>& row) {
    if (row_out != nullptr) *row_out = row;
  });
}

bool IqaCache::Gather(int layer, uint32_t input_id,
                      const std::vector<int64_t>& neurons,
                      std::vector<float>* out) {
  return LookupInternal(
      layer, input_id, [&neurons, out](const std::vector<float>& row) {
        out->resize(neurons.size());
        for (size_t i = 0; i < neurons.size(); ++i) {
          (*out)[i] = row[static_cast<size_t>(neurons[i])];
        }
      });
}

void IqaCache::TouchLocked(Shard* shard, uint64_t key, Entry* entry) {
  shard->by_recency.erase(entry->last_use);
  entry->last_use = ++shard->clock;
  shard->by_recency[entry->last_use] = key;
}

void IqaCache::Insert(int layer, uint32_t input_id, std::vector<float> row) {
  const uint64_t bytes = BytesOf(row);
  const uint64_t key = KeyOf(layer, input_id);
  Shard& shard = ShardFor(key);
  if (bytes > shard.capacity_bytes) return;  // can never fit

  common::MutexLock lock(&shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Refresh in place.
    shard.size_bytes -= BytesOf(it->second.row);
    it->second.row = std::move(row);
    shard.size_bytes += BytesOf(it->second.row);
    TouchLocked(&shard, key, &it->second);
    return;
  }

  // Evict from the policy's end of the recency order until the row fits.
  while (shard.size_bytes + bytes > shard.capacity_bytes &&
         !shard.by_recency.empty()) {
    auto victim_pos = policy_ == EvictionPolicy::kMru
                          ? std::prev(shard.by_recency.end())
                          : shard.by_recency.begin();
    const uint64_t victim_key = victim_pos->second;
    auto victim = shard.entries.find(victim_key);
    DE_CHECK(victim != shard.entries.end());
    shard.size_bytes -= BytesOf(victim->second.row);
    shard.entries.erase(victim);
    shard.by_recency.erase(victim_pos);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }

  Entry entry;
  entry.row = std::move(row);
  entry.last_use = ++shard.clock;
  shard.by_recency[entry.last_use] = key;
  shard.size_bytes += BytesOf(entry.row);
  shard.entries.emplace(key, std::move(entry));
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
}

void IqaCache::Clear() {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    shard->entries.clear();
    shard->by_recency.clear();
    shard->size_bytes = 0;
  }
}

void IqaCache::EraseLayer(int layer) {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (static_cast<int>(it->first >> 32) == layer) {
        shard->by_recency.erase(it->second.last_use);
        shard->size_bytes -= BytesOf(it->second.row);
        it = shard->entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

uint64_t IqaCache::size_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    total += shard->size_bytes;
  }
  return total;
}

size_t IqaCache::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    total += shard->entries.size();
  }
  return total;
}

IqaCache::Stats IqaCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    total.hits += shard->hits.load(std::memory_order_relaxed);
    total.misses += shard->misses.load(std::memory_order_relaxed);
    total.insertions += shard->insertions.load(std::memory_order_relaxed);
    total.evictions += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<IqaCache::ShardSnapshot> IqaCache::ShardSnapshots() const {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardSnapshot snap;
    snap.hits = shard->hits.load(std::memory_order_relaxed);
    snap.misses = shard->misses.load(std::memory_order_relaxed);
    snap.insertions = shard->insertions.load(std::memory_order_relaxed);
    snap.evictions = shard->evictions.load(std::memory_order_relaxed);
    snap.capacity_bytes = shard->capacity_bytes;
    {
      common::MutexLock lock(&shard->mu);
      snap.size_bytes = shard->size_bytes;
      snap.entry_count = shard->entries.size();
    }
    snapshots.push_back(snap);
  }
  return snapshots;
}

}  // namespace core
}  // namespace deepeverest
