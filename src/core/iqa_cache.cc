#include "core/iqa_cache.h"

namespace deepeverest {
namespace core {

const std::vector<float>* IqaCache::Lookup(int layer, uint32_t input_id) {
  const uint64_t key = KeyOf(layer, input_id);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Touch(key, &it->second);
  return &it->second.row;
}

void IqaCache::Touch(uint64_t key, Entry* entry) {
  by_recency_.erase(entry->last_use);
  entry->last_use = ++clock_;
  by_recency_[entry->last_use] = key;
}

void IqaCache::Insert(int layer, uint32_t input_id, std::vector<float> row) {
  const uint64_t bytes = BytesOf(row);
  if (bytes > capacity_bytes_) return;  // can never fit
  const uint64_t key = KeyOf(layer, input_id);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place.
    size_bytes_ -= BytesOf(it->second.row);
    it->second.row = std::move(row);
    size_bytes_ += BytesOf(it->second.row);
    Touch(key, &it->second);
    return;
  }

  // Evict most-recently-used entries until the new row fits.
  while (size_bytes_ + bytes > capacity_bytes_ && !by_recency_.empty()) {
    auto mru = std::prev(by_recency_.end());
    const uint64_t victim_key = mru->second;
    auto victim = entries_.find(victim_key);
    DE_CHECK(victim != entries_.end());
    size_bytes_ -= BytesOf(victim->second.row);
    entries_.erase(victim);
    by_recency_.erase(mru);
    ++stats_.evictions;
  }

  Entry entry;
  entry.row = std::move(row);
  entry.last_use = ++clock_;
  by_recency_[entry.last_use] = key;
  size_bytes_ += BytesOf(entry.row);
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
}

void IqaCache::Clear() {
  entries_.clear();
  by_recency_.clear();
  size_bytes_ = 0;
}

}  // namespace core
}  // namespace deepeverest
