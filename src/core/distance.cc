#include "core/distance.h"

#include "core/query.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace deepeverest {
namespace core {

namespace {

class L1 : public DistanceFunction {
 public:
  double Aggregate(const double* values, size_t n) const override {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += values[i];
    return sum;
  }
  std::string name() const override { return "l1"; }
};

class L2 : public DistanceFunction {
 public:
  double Aggregate(const double* values, size_t n) const override {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += values[i] * values[i];
    return std::sqrt(sum);
  }
  std::string name() const override { return "l2"; }
};

class LInf : public DistanceFunction {
 public:
  double Aggregate(const double* values, size_t n) const override {
    double best = 0.0;
    for (size_t i = 0; i < n; ++i) best = std::max(best, values[i]);
    return best;
  }
  std::string name() const override { return "linf"; }
};

class WeightedL2 : public DistanceFunction {
 public:
  explicit WeightedL2(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  double Aggregate(const double* values, size_t n) const override {
    DE_CHECK_EQ(n, weights_.size());
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += weights_[i] * values[i] * values[i];
    }
    return std::sqrt(sum);
  }
  std::string name() const override { return "weighted-l2"; }

 private:
  std::vector<double> weights_;
};

}  // namespace

Result<DistancePtr> MakeDistance(DistanceKind kind,
                                 std::vector<double> weights) {
  switch (kind) {
    case DistanceKind::kL1:
      return DistancePtr(std::make_shared<L1>());
    case DistanceKind::kL2:
      return DistancePtr(std::make_shared<L2>());
    case DistanceKind::kLInf:
      return DistancePtr(std::make_shared<LInf>());
    case DistanceKind::kWeightedL2: {
      if (weights.empty()) {
        return Status::InvalidArgument("weighted-l2 requires weights");
      }
      for (double w : weights) {
        if (w < 0.0) {
          return Status::InvalidArgument(
              "weighted-l2 weights must be non-negative (monotonicity)");
        }
      }
      return DistancePtr(std::make_shared<WeightedL2>(std::move(weights)));
    }
  }
  return Status::InvalidArgument("unknown distance kind");
}

DistancePtr L2Distance() {
  static const std::shared_ptr<const L2>& instance =
      *new std::shared_ptr<const L2>(std::make_shared<L2>());
  return instance;
}

const char* DistanceKindToString(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kL1:
      return "l1";
    case DistanceKind::kL2:
      return "l2";
    case DistanceKind::kLInf:
      return "linf";
    case DistanceKind::kWeightedL2:
      return "weighted-l2";
  }
  return "?";
}

std::string NeuronGroup::ToString() const {
  std::ostringstream out;
  out << "layer " << layer << " {";
  for (size_t i = 0; i < neurons.size(); ++i) {
    if (i > 0) out << ", ";
    out << neurons[i];
  }
  out << "}";
  return out.str();
}

}  // namespace core
}  // namespace deepeverest
