#include "core/distance.h"

#include "core/query.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "kernels/kernels.h"

namespace deepeverest {
namespace core {

// Default batched forms: per-row loops with exactly the legacy
// per-candidate arithmetic (widen to double, abs-diff, then the virtual
// Aggregate). Custom DistanceFunction subclasses inherit these and keep
// bit-identical results; only the per-candidate virtual-call overhead moves.
void DistanceFunction::AggregateAbsDiffMany(const float* rows,
                                            size_t row_stride, size_t num_rows,
                                            const float* target, size_t n,
                                            double* out) const {
  std::vector<double> diffs(n);
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * row_stride;
    for (size_t i = 0; i < n; ++i) {
      diffs[i] = std::abs(static_cast<double>(row[i]) -
                          static_cast<double>(target[i]));
    }
    out[r] = Aggregate(diffs.data(), n);
  }
}

void DistanceFunction::AggregateValuesMany(const float* rows,
                                           size_t row_stride, size_t num_rows,
                                           size_t n, double* out) const {
  std::vector<double> values(n);
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * row_stride;
    for (size_t i = 0; i < n; ++i) values[i] = static_cast<double>(row[i]);
    out[r] = Aggregate(values.data(), n);
  }
}

namespace {

/// Built-ins route the batched forms to the dispatched kernel table: one
/// indirect call per block, SIMD when the CPU has it. The scalar kernels
/// follow the exact op order of the Aggregate() bodies below, and the
/// parity suite pins the AVX2 table against them bitwise, so results are
/// identical across the virtual, scalar-kernel, and SIMD-kernel paths.
class BuiltinDistance : public DistanceFunction {
 public:
  explicit BuiltinDistance(kernels::AggKind kind) : kind_(kind) {}

  void AggregateAbsDiffMany(const float* rows, size_t row_stride,
                            size_t num_rows, const float* target, size_t n,
                            double* out) const override {
    kernels::Active().abs_diff_agg[static_cast<int>(kind_)](
        rows, row_stride, num_rows, target, weights_data(n), n, out);
  }

  void AggregateValuesMany(const float* rows, size_t row_stride,
                           size_t num_rows, size_t n,
                           double* out) const override {
    kernels::Active().value_agg[static_cast<int>(kind_)](
        rows, row_stride, num_rows, weights_data(n), n, out);
  }

 protected:
  /// Non-null only for weighted kinds; `n` is validated there.
  virtual const double* weights_data(size_t n) const {
    (void)n;
    return nullptr;
  }

 private:
  kernels::AggKind kind_;
};

class L1 : public BuiltinDistance {
 public:
  L1() : BuiltinDistance(kernels::AggKind::kL1) {}
  double Aggregate(const double* values, size_t n) const override {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += values[i];
    return sum;
  }
  std::string name() const override { return "l1"; }
};

class L2 : public BuiltinDistance {
 public:
  L2() : BuiltinDistance(kernels::AggKind::kL2) {}
  double Aggregate(const double* values, size_t n) const override {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += values[i] * values[i];
    return std::sqrt(sum);
  }
  std::string name() const override { return "l2"; }
};

class LInf : public BuiltinDistance {
 public:
  LInf() : BuiltinDistance(kernels::AggKind::kLInf) {}
  double Aggregate(const double* values, size_t n) const override {
    // Seeded from the first value, not 0.0: highest queries aggregate raw
    // activations, and an all-negative vector's max must be its largest
    // element, not a phantom zero.
    if (n == 0) return 0.0;
    double best = values[0];
    for (size_t i = 1; i < n; ++i) best = std::max(best, values[i]);
    return best;
  }
  std::string name() const override { return "linf"; }
};

class WeightedL2 : public BuiltinDistance {
 public:
  explicit WeightedL2(std::vector<double> weights)
      : BuiltinDistance(kernels::AggKind::kWeightedL2),
        weights_(std::move(weights)) {}

  double Aggregate(const double* values, size_t n) const override {
    DE_CHECK_EQ(n, weights_.size());
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += weights_[i] * values[i] * values[i];
    }
    return std::sqrt(sum);
  }
  std::string name() const override { return "weighted-l2"; }

 protected:
  const double* weights_data(size_t n) const override {
    DE_CHECK_EQ(n, weights_.size());
    return weights_.data();
  }

 private:
  std::vector<double> weights_;
};

}  // namespace

Result<DistancePtr> MakeDistance(DistanceKind kind,
                                 std::vector<double> weights) {
  switch (kind) {
    case DistanceKind::kL1:
      return DistancePtr(std::make_shared<L1>());
    case DistanceKind::kL2:
      return DistancePtr(std::make_shared<L2>());
    case DistanceKind::kLInf:
      return DistancePtr(std::make_shared<LInf>());
    case DistanceKind::kWeightedL2: {
      if (weights.empty()) {
        return Status::InvalidArgument("weighted-l2 requires weights");
      }
      for (double w : weights) {
        if (w < 0.0) {
          return Status::InvalidArgument(
              "weighted-l2 weights must be non-negative (monotonicity)");
        }
      }
      return DistancePtr(std::make_shared<WeightedL2>(std::move(weights)));
    }
  }
  return Status::InvalidArgument("unknown distance kind");
}

DistancePtr L2Distance() {
  static const std::shared_ptr<const L2>& instance =
      *new std::shared_ptr<const L2>(std::make_shared<L2>());
  return instance;
}

const char* DistanceKindToString(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kL1:
      return "l1";
    case DistanceKind::kL2:
      return "l2";
    case DistanceKind::kLInf:
      return "linf";
    case DistanceKind::kWeightedL2:
      return "weighted-l2";
  }
  return "?";
}

std::string NeuronGroup::ToString() const {
  std::ostringstream out;
  out << "layer " << layer << " {";
  for (size_t i = 0; i < neurons.size(); ++i) {
    if (i > 0) out << ", ";
    out << neurons[i];
  }
  out << "}";
  return out.str();
}

}  // namespace core
}  // namespace deepeverest
