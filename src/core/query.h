#ifndef DEEPEVEREST_CORE_QUERY_H_
#define DEEPEVEREST_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deepeverest {
namespace core {

/// \brief A group of neurons within one layer of the model.
///
/// `layer` is a model layer index; `neurons` are flat element indices into
/// that layer's output tensor. The group is what the user selects at query
/// time — indexes never depend on it (that is the point of the paper).
struct NeuronGroup {
  int layer = 0;
  std::vector<int64_t> neurons;

  std::string ToString() const;
};

/// \brief One result entry: an input and its distance (top-k most-similar,
/// ascending) or score (top-k highest, descending).
struct ResultEntry {
  uint32_t input_id = 0;
  double value = 0.0;
};

/// \brief Per-query execution statistics.
///
/// `inputs_run` counts inputs actually pushed through the DNN during the
/// query — the paper's Table 3 metric and the quantity NTA is instance
/// optimal in. All inference stats are metered per call (InferenceReceipt),
/// so they are exact for this query even when other queries run
/// concurrently on the same engine. `batches_run` is fractional when the
/// cross-query batching scheduler shared device launches between queries.
struct QueryStats {
  int64_t inputs_run = 0;
  double batches_run = 0.0;
  int64_t rounds = 0;            // NTA iterations of step 4 (c counter)
  int64_t iqa_hits = 0;          // candidate rows served from the IQA cache
  double wall_seconds = 0.0;
  double simulated_gpu_seconds = 0.0;
  /// Time spent in the QueryService admission queue before a worker picked
  /// the query up (0 outside the service).
  double queue_seconds = 0.0;
  bool terminated_early = false;  // stopped via threshold, not exhaustion
  /// Dataset version (input count) the query was pinned at: the answer is
  /// bit-identical to a fresh scan over inputs [0, dataset_version).
  int64_t dataset_version = 0;
};

/// \brief Result of a top-k query.
struct TopKResult {
  /// Sorted best-first: ascending distance for most-similar queries,
  /// descending score for highest queries.
  std::vector<ResultEntry> entries;
  QueryStats stats;
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QUERY_H_
