#include "core/query_spec.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace deepeverest {
namespace core {

namespace {

/// Largest accepted deadline, ~3 years in ms: keeps ms→ns conversions far
/// from the int64 range QueryContext::SetDeadlineAfter casts into. Wire
/// input feeds this path, so the bound is part of validation, not a caller
/// courtesy.
constexpr double kMaxDeadlineMs = 1e11;

bool BitEqual(double a, double b) {
  // Field equality must be *bit* equality for the round-trip tests, but
  // both arms only ever hold values produced by parsing finite decimal
  // text, so comparing values (with -0.0 == 0.0 collapsed by ==) suffices
  // — except NaN, which validation rejects anyway.
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace

bool operator==(const QuerySpec& a, const QuerySpec& b) {
  return a.kind == b.kind && a.k == b.k && a.layer == b.layer &&
         a.neurons == b.neurons && a.top_neurons == b.top_neurons &&
         a.top_of == b.top_of && a.target_id == b.target_id &&
         a.target_activations == b.target_activations &&
         a.distance == b.distance && BitEqual(a.theta, b.theta) &&
         a.session_id == b.session_id && a.qos == b.qos &&
         BitEqual(a.deadline_ms, b.deadline_ms) && a.weight == b.weight;
}

Status ValidateSpec(const QuerySpec& spec) {
  if (spec.kind != QuerySpec::Kind::kHighest &&
      spec.kind != QuerySpec::Kind::kMostSimilar) {
    return Status::InvalidArgument("unknown query kind");
  }
  if (spec.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (spec.layer < 0) return Status::InvalidArgument("layer must be >= 0");
  if (!(spec.theta > 0.0 && spec.theta <= 1.0)) {  // also rejects NaN
    return Status::InvalidArgument("theta must be in (0, 1]");
  }

  // Exactly one group form: explicit indices XOR the derived TOP m NEURONS.
  if (spec.top_neurons < 0) {
    return Status::InvalidArgument("top_neurons must be >= 0");
  }
  if (spec.top_neurons > 0 && !spec.neurons.empty()) {
    return Status::InvalidArgument(
        "explicit neurons and TOP m NEURONS are mutually exclusive");
  }
  if (spec.top_neurons == 0 && spec.neurons.empty()) {
    return Status::InvalidArgument("empty neuron group");
  }
  if (spec.top_neurons == 0 && spec.top_of >= 0) {
    // A top_of reference on an explicit group would be silently ignored —
    // the caller almost certainly meant a derived group and forgot
    // top_neurons; rejecting keeps "no silently different query" strict.
    return Status::InvalidArgument(
        "top_of requires a derived group (top_neurons > 0)");
  }
  for (const int64_t neuron : spec.neurons) {
    if (neuron < 0) {
      return Status::InvalidArgument("neuron index must be >= 0, got " +
                                     std::to_string(neuron));
    }
  }
  // Duplicates would double-count the neuron in every distance aggregate —
  // never what the user meant, and previously each entry point treated it
  // differently (QL allowed it, the engine silently computed it).
  std::vector<int64_t> sorted = spec.neurons;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    return Status::InvalidArgument("duplicate neuron index " +
                                   std::to_string(*dup) + " in group");
  }

  // Reference inputs are uint32 ids on the engine side.
  const int64_t max_input =
      static_cast<int64_t>(std::numeric_limits<uint32_t>::max());
  if (spec.kind == QuerySpec::Kind::kMostSimilar) {
    // Exactly one target form: a dataset input XOR an explicit activation
    // vector.
    if (spec.target_id < 0 && spec.target_activations.empty()) {
      return Status::InvalidArgument(
          "most-similar query requires target_id >= 0 or "
          "target_activations");
    }
    if (spec.target_id >= 0 && !spec.target_activations.empty()) {
      return Status::InvalidArgument(
          "target_id and target_activations are mutually exclusive");
    }
    if (spec.target_id > max_input) {
      return Status::InvalidArgument("target_id out of range");
    }
    if (!spec.target_activations.empty()) {
      for (const float v : spec.target_activations) {
        if (std::isnan(v)) {
          return Status::InvalidArgument(
              "target_activations must not contain NaN");
        }
      }
      // The vector is one value per group neuron; with an explicit group
      // the engine-independent shape is checkable right here.
      const size_t group_size = spec.has_derived_group()
                                    ? static_cast<size_t>(spec.top_neurons)
                                    : spec.neurons.size();
      if (spec.target_activations.size() != group_size) {
        return Status::InvalidArgument(
            "target_activations must have one value per group neuron");
      }
    }
  } else {
    if (spec.target_id >= 0) {
      // A target on a highest query would be silently ignored — the caller
      // almost certainly forgot kind=most_similar; reject, don't guess.
      return Status::InvalidArgument("target_id requires kind=most_similar");
    }
    if (!spec.target_activations.empty()) {
      return Status::InvalidArgument(
          "target_activations requires kind=most_similar");
    }
  }
  if (spec.top_of > max_input) {
    return Status::InvalidArgument("top_of out of range");
  }
  if (spec.has_derived_group() && spec.top_of < 0 &&
      spec.kind == QuerySpec::Kind::kHighest) {
    return Status::InvalidArgument(
        "HIGHEST with TOP m NEURONS requires OF <input> (no SIMILAR "
        "target to default to)");
  }
  if (spec.has_derived_group() && spec.top_of < 0 &&
      !spec.target_activations.empty()) {
    // The derived group is resolved from a dataset input; an activation
    // vector is not one.
    return Status::InvalidArgument(
        "TOP m NEURONS with target_activations requires OF <input>");
  }

  switch (spec.distance) {
    case DistanceKind::kL1:
    case DistanceKind::kL2:
    case DistanceKind::kLInf:
      break;
    default:
      // WeightedL2 needs per-neuron weights the spec does not carry.
      return Status::InvalidArgument("unsupported distance for a QuerySpec");
  }

  // Serving envelope. Negative deadline_ms = no deadline (any negative
  // value, so a decoded default round-trips); non-negative must be finite
  // and bounded.
  if (spec.deadline_ms >= 0.0 &&
      !(spec.deadline_ms <= kMaxDeadlineMs)) {  // also rejects NaN
    return Status::InvalidArgument("deadline_ms must be in [0, 1e11]");
  }
  if (std::isnan(spec.deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must be a number");
  }
  if (spec.weight < 1) {
    return Status::InvalidArgument("session weight must be >= 1");
  }
  const int class_index = QosIndex(spec.qos);
  if (class_index < 0 || class_index >= kNumQosClasses) {
    return Status::InvalidArgument("unknown QoS class");
  }
  return Status::OK();
}

}  // namespace core
}  // namespace deepeverest
