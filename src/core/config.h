#ifndef DEEPEVEREST_CORE_CONFIG_H_
#define DEEPEVEREST_CORE_CONFIG_H_

#include <cstdint>

#include "core/npi.h"

namespace deepeverest {
namespace core {

/// \brief The two knobs the configuration selector sets (paper §4.7.2).
struct SystemConfig {
  int num_partitions = 16;
  double mai_ratio = 0.0;

  LayerIndexConfig ToLayerConfig() const {
    return LayerIndexConfig{num_partitions, mai_ratio};
  }
};

/// Bytes consumed by NPI PIDs for the whole model under `num_partitions`
/// (paper formula: nNeurons * nInputs * log2(nPartitions) / 8).
uint64_t NpiCostBytes(int64_t total_neurons, uint32_t num_inputs,
                      int num_partitions);

/// Bytes consumed by MAI under `ratio` (paper formula:
/// ratio * nInputs * nNeurons * 4 * 2 — a float activation plus a uint32
/// inputID per pair).
uint64_t MaiCostBytes(int64_t total_neurons, uint32_t num_inputs,
                      double ratio);

/// \brief The heuristic configuration selector of §4.7.2.
///
/// Picks `nPartitions` as the largest power of two that (a) keeps partition
/// size at or above the throughput-optimal batch size
/// (nPartitions <= nInputs / batchSize) and (b) fits the storage budget;
/// then spends whatever budget remains on the MAI ratio. When even
/// nPartitions = 2 exceeds the budget, 2 is returned anyway (one bit per
/// PID is the floor of the design) and ratio is 0.
SystemConfig SelectConfig(uint64_t budget_bytes, int batch_size,
                          uint32_t num_inputs, int64_t total_neurons);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_CONFIG_H_
