#include "core/config.h"

#include <algorithm>
#include <cmath>

namespace deepeverest {
namespace core {

uint64_t NpiCostBytes(int64_t total_neurons, uint32_t num_inputs,
                      int num_partitions) {
  const uint64_t bits =
      static_cast<uint64_t>(total_neurons) * num_inputs *
      static_cast<uint64_t>(
          PackedIntArray::BitsFor(static_cast<uint64_t>(num_partitions)));
  return (bits + 7) / 8;
}

uint64_t MaiCostBytes(int64_t total_neurons, uint32_t num_inputs,
                      double ratio) {
  const uint32_t count =
      static_cast<uint32_t>(ratio * static_cast<double>(num_inputs));
  return static_cast<uint64_t>(total_neurons) * count * 8;
}

SystemConfig SelectConfig(uint64_t budget_bytes, int batch_size,
                          uint32_t num_inputs, int64_t total_neurons) {
  DE_CHECK_GT(batch_size, 0);
  DE_CHECK_GT(num_inputs, 0u);
  DE_CHECK_GT(total_neurons, 0);

  // Partition sizes should not drop below the optimal batch size, or GPU
  // parallelism goes unused (§4.7.2).
  const uint32_t max_by_batch = std::max<uint32_t>(
      2, num_inputs / static_cast<uint32_t>(batch_size));

  int num_partitions = 2;
  for (uint64_t candidate = 2;
       candidate * 2 <= max_by_batch &&
       NpiCostBytes(total_neurons, num_inputs,
                    static_cast<int>(candidate * 2)) < budget_bytes;
       candidate *= 2) {
    num_partitions = static_cast<int>(candidate * 2);
  }

  SystemConfig config;
  config.num_partitions = num_partitions;
  const uint64_t npi_cost =
      NpiCostBytes(total_neurons, num_inputs, num_partitions);
  if (budget_bytes > npi_cost) {
    const uint64_t remaining = budget_bytes - npi_cost;
    const double per_unit_cost =
        static_cast<double>(total_neurons) * num_inputs * 8.0;
    config.mai_ratio =
        std::min(1.0, static_cast<double>(remaining) / per_unit_cost);
    // Round down to a whole number of MAI entries so the accounted cost is
    // what actually gets stored.
    const uint32_t count = static_cast<uint32_t>(
        config.mai_ratio * static_cast<double>(num_inputs));
    config.mai_ratio =
        static_cast<double>(count) / static_cast<double>(num_inputs);
  }
  return config;
}

}  // namespace core
}  // namespace deepeverest
