#ifndef DEEPEVEREST_CORE_DISTANCE_H_
#define DEEPEVEREST_CORE_DISTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace deepeverest {
namespace core {

/// \brief Built-in monotonic distance aggregators.
enum class DistanceKind {
  kL1,
  kL2,        // default in DeepEverest
  kLInf,
  kWeightedL2,
};

/// \brief Monotonic aggregation function `dist` from the paper (section 2).
///
/// For most-similar queries, Aggregate() is applied to the per-neuron
/// absolute differences |act(i,x) - act(i,s)|; for highest queries it is
/// applied to the activations themselves ("measures their magnitude"). NTA's
/// correctness requires monotonicity: increasing any coordinate must not
/// decrease the result. All built-ins satisfy it; custom subclasses must too.
class DistanceFunction {
 public:
  virtual ~DistanceFunction() = default;

  /// Aggregates `values[0..n)`; all values must be non-negative.
  virtual double Aggregate(const double* values, size_t n) const = 0;

  double Aggregate(const std::vector<double>& values) const {
    return Aggregate(values.data(), values.size());
  }

  virtual std::string name() const = 0;
};

using DistancePtr = std::shared_ptr<const DistanceFunction>;

/// Creates one of the built-in distances. For kWeightedL2, `weights` must
/// have one non-negative entry per neuron in the query's group; other kinds
/// ignore it.
Result<DistancePtr> MakeDistance(DistanceKind kind,
                                 std::vector<double> weights = {});

/// The paper's default: l2.
DistancePtr L2Distance();

const char* DistanceKindToString(DistanceKind kind);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_DISTANCE_H_
