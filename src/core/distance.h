#ifndef DEEPEVEREST_CORE_DISTANCE_H_
#define DEEPEVEREST_CORE_DISTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace deepeverest {
namespace core {

/// \brief Built-in monotonic distance aggregators.
enum class DistanceKind {
  kL1,
  kL2,        // default in DeepEverest
  kLInf,
  kWeightedL2,
};

/// \brief Monotonic aggregation function `dist` from the paper (section 2).
///
/// For most-similar queries, Aggregate() is applied to the per-neuron
/// absolute differences |act(i,x) - act(i,s)|; for highest queries it is
/// applied to the activations themselves ("measures their magnitude"). NTA's
/// correctness requires monotonicity: increasing any coordinate must not
/// decrease the result. All built-ins satisfy it; custom subclasses must too.
class DistanceFunction {
 public:
  virtual ~DistanceFunction() = default;

  /// Aggregates `values[0..n)`. Most-similar queries pass non-negative
  /// absolute differences; highest queries pass raw activations, which may
  /// be negative (linf must therefore seed from the first value, not 0).
  virtual double Aggregate(const double* values, size_t n) const = 0;

  double Aggregate(const std::vector<double>& values) const {
    return Aggregate(values.data(), values.size());
  }

  /// Batched most-similar form: out[r] = Aggregate over the absolute
  /// differences |rows[r*row_stride + i] - target[i]|, i in [0, n), for each
  /// of `num_rows` float rows laid out `row_stride` apart.
  ///
  /// This is THE hot-path entry point: one virtual call per row *block*
  /// instead of one per candidate. Built-ins override it to a single
  /// dispatched kernel call (kernels::Active(), SIMD when available); the
  /// default implementation loops rows and calls Aggregate() with exactly
  /// the legacy per-candidate arithmetic, so custom subclasses keep
  /// bit-identical results without opting in.
  virtual void AggregateAbsDiffMany(const float* rows, size_t row_stride,
                                    size_t num_rows, const float* target,
                                    size_t n, double* out) const;

  /// Batched highest form: out[r] = Aggregate over row r's values.
  virtual void AggregateValuesMany(const float* rows, size_t row_stride,
                                   size_t num_rows, size_t n,
                                   double* out) const;

  virtual std::string name() const = 0;
};

using DistancePtr = std::shared_ptr<const DistanceFunction>;

/// Creates one of the built-in distances. For kWeightedL2, `weights` must
/// have one non-negative entry per neuron in the query's group; other kinds
/// ignore it.
Result<DistancePtr> MakeDistance(DistanceKind kind,
                                 std::vector<double> weights = {});

/// The paper's default: l2.
DistancePtr L2Distance();

const char* DistanceKindToString(DistanceKind kind);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_DISTANCE_H_
