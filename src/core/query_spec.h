#ifndef DEEPEVEREST_CORE_QUERY_SPEC_H_
#define DEEPEVEREST_CORE_QUERY_SPEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/qos.h"
#include "common/result.h"
#include "core/distance.h"
#include "core/query.h"
#include "core/query_context.h"

namespace deepeverest {
namespace core {

/// \brief The one canonical description of a top-k query, shared by every
/// entry point: QL text (ParseQuery), the JSON wire protocol
/// (query_spec_json.h), and programmatic construction all produce a
/// QuerySpec, and QueryService::Submit / DeepEverest::ExecuteSpec consume
/// one. There is deliberately no other query representation in the system —
/// the declarative premise of the paper is "state *what* to retrieve"; this
/// struct is that statement.
///
/// A spec has two halves:
///  - the *declarative query*: kind, k, layer, the neuron group (explicit
///    indices or the derived `TOP m NEURONS [OF input]` form), distance, θ.
///    This half is what QL text and `ToString()` cover.
///  - the *serving envelope*: session, QoS class, deadline, weight, and the
///    per-submission progress sink. Engine-direct execution ignores the
///    scheduling fields; the QueryService enforces them.
///
/// Derived neuron groups (`top_neurons > 0`) are resolved at *execution*
/// time, inside the engine, under the query's QueryContext — so the
/// resolution inference is metered into the query's receipt, checked
/// against its deadline, and cancellable like every other part of the
/// query. (It used to happen in the QL layer, where none of that applied.)
struct QuerySpec {
  enum class Kind {
    kHighest,      // the k inputs with the largest aggregated activations
    kMostSimilar,  // the k inputs closest to dataset input `target_id`
  };

  // --- declarative query -------------------------------------------------
  Kind kind = Kind::kHighest;
  int k = 20;
  /// Model layer the neuron group lives in.
  int layer = 0;
  /// Explicit neuron group: flat element indices into the layer's output
  /// tensor. Empty when the group is derived (`top_neurons > 0`).
  std::vector<int64_t> neurons;
  /// Derived group `TOP m NEURONS`: when > 0, the group is the m maximally
  /// activated neurons of the reference input (§4.7.1), resolved at
  /// execution time under the query's context.
  int top_neurons = 0;
  /// Reference input for the derived group (`OF <input>`); -1 defaults to
  /// the most-similar target.
  int64_t top_of = -1;
  /// Target input for most-similar queries; -1 = unset. A kMostSimilar
  /// spec carries exactly one of `target_id` / `target_activations`.
  int64_t target_id = -1;
  /// Out-of-dataset most-similar target: an arbitrary activation vector,
  /// one value per neuron in the group (so for a derived group,
  /// `top_neurons` values). Unlike a `target_id` target, nothing is
  /// excluded from the result set. Programmatic + JSON wire only — QL text
  /// has no syntax for it.
  std::vector<float> target_activations;
  DistanceKind distance = DistanceKind::kL2;
  /// θ-approximation factor in (0, 1]; 1.0 = exact (paper section 6).
  double theta = 1.0;

  // --- serving envelope --------------------------------------------------
  /// Client session for admission fairness: same-session queries run FIFO
  /// relative to each other, distinct sessions are served round-robin
  /// within their QoS class.
  uint64_t session_id = 0;
  /// QoS class: a strict dispatch priority (interactive > batch >
  /// best_effort) and the selector of the device batch linger window.
  /// Results are identical across classes — only scheduling differs.
  QosClass qos = QosClass::kBatch;
  /// Deadline relative to admission, in milliseconds. Negative (the
  /// default) = no deadline; 0 = already due (the service rejects it at
  /// dispatch without running any inference); > 0 = the real budget. A
  /// query whose deadline passes while queued is rejected without running;
  /// one that expires mid-execution aborts cooperatively within one NTA
  /// round.
  double deadline_ms = -1.0;
  /// Weight of this query's session in the weighted round-robin among its
  /// class's sessions (>= 1; the session's most recent submission wins).
  int weight = 1;
  /// Per-submission progress sink, threaded into the query's QueryContext:
  /// invoked on the executing thread after each NTA round with the entries
  /// already *proven* final; return false to stop early with the current
  /// θ-guaranteed top-k. Not part of the wire/QL encodings and excluded
  /// from operator== — it is submission state, not query identity.
  std::function<bool(const NtaProgress&)> on_progress;

  /// Canonical QL text of the declarative half (round-trips through
  /// ParseQuery; θ is emitted with 17 significant digits so the round trip
  /// is bit-exact). The serving envelope is not part of QL syntax.
  std::string ToString() const;

  /// True when the neuron group is the derived `TOP m NEURONS` form.
  bool has_derived_group() const { return top_neurons > 0; }
};

/// Equality over every encodable field (both halves of the spec except
/// `on_progress`). θ and deadline compare bit-identically — this is what
/// the encode→decode round-trip tests assert.
bool operator==(const QuerySpec& a, const QuerySpec& b);
inline bool operator!=(const QuerySpec& a, const QuerySpec& b) {
  return !(a == b);
}

/// \brief THE validation choke point: every entry point (QL parsing, JSON
/// wire decoding, QueryService::Submit, DeepEverest::ExecuteSpec) funnels
/// through this one function, so the same malformed query yields the same
/// InvalidArgument from every door. Checks everything checkable without an
/// engine: k, θ, group shape (exactly one of explicit/derived, no
/// negative or duplicate neuron indices), kind/target consistency,
/// distance, and the serving envelope (deadline bound, weight, QoS class).
/// Engine-dependent bounds (layer count, neuron count, dataset size) are
/// enforced by the engine itself at execution.
Status ValidateSpec(const QuerySpec& spec);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_QUERY_SPEC_H_
