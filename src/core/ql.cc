#include "core/ql.h"

#include <cctype>
#include <sstream>

namespace deepeverest {
namespace core {

namespace {

/// Lexer: uppercased words, integers/floats, and the punctuation ( ) ,
struct Token {
  enum class Type { kWord, kNumber, kLParen, kRParen, kComma, kEnd };
  Type type = Type::kEnd;
  std::string text;   // uppercased for words
  double number = 0;  // for kNumber
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t pos = 0;
    while (pos < text_.size()) {
      const char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (c == '(') {
        tokens.push_back({Token::Type::kLParen, "(", 0});
        ++pos;
      } else if (c == ')') {
        tokens.push_back({Token::Type::kRParen, ")", 0});
        ++pos;
      } else if (c == ',') {
        tokens.push_back({Token::Type::kComma, ",", 0});
        ++pos;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 c == '-') {
        size_t end = pos;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == '-' ||
                text_[end] == 'e' || text_[end] == 'E')) {
          ++end;
        }
        const std::string number = text_.substr(pos, end - pos);
        try {
          tokens.push_back({Token::Type::kNumber, number,
                            std::stod(number)});
        } catch (...) {
          return Status::InvalidArgument("bad number '" + number + "'");
        }
        pos = end;
      } else if (std::isalpha(static_cast<unsigned char>(c))) {
        size_t end = pos;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        std::string word = text_.substr(pos, end - pos);
        for (char& ch : word) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        tokens.push_back({Token::Type::kWord, word, 0});
        pos = end;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
    }
    tokens.push_back({Token::Type::kEnd, "<end>", 0});
    return tokens;
  }

 private:
  const std::string& text_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery query;
    DE_RETURN_NOT_OK(ExpectWord("SELECT"));
    DE_RETURN_NOT_OK(ExpectWord("TOPK"));
    DE_RETURN_NOT_OK(ExpectInt(&query.k, "k"));

    // kind
    if (PeekWord("HIGHEST")) {
      Advance();
      query.kind = ParsedQuery::Kind::kHighest;
    } else {
      if (PeekWord("MOST")) Advance();
      DE_RETURN_NOT_OK(ExpectWord("SIMILAR"));
      DE_RETURN_NOT_OK(ExpectWord("TO"));
      query.kind = ParsedQuery::Kind::kMostSimilar;
      int64_t target = 0;
      DE_RETURN_NOT_OK(ExpectInt64(&target, "target input"));
      query.target = target;
    }

    DE_RETURN_NOT_OK(ExpectWord("FOR"));
    DE_RETURN_NOT_OK(ExpectWord("LAYER"));
    DE_RETURN_NOT_OK(ExpectInt(&query.layer, "layer"));

    // group
    if (PeekWord("NEURONS")) {
      Advance();
      DE_RETURN_NOT_OK(Expect(Token::Type::kLParen, "("));
      while (true) {
        int64_t neuron = 0;
        DE_RETURN_NOT_OK(ExpectInt64(&neuron, "neuron"));
        query.neurons.push_back(neuron);
        if (Peek().type == Token::Type::kComma) {
          Advance();
          continue;
        }
        break;
      }
      DE_RETURN_NOT_OK(Expect(Token::Type::kRParen, ")"));
    } else if (PeekWord("TOP")) {
      Advance();
      DE_RETURN_NOT_OK(ExpectInt(&query.top_neurons, "top-neuron count"));
      DE_RETURN_NOT_OK(ExpectWord("NEURONS"));
      if (PeekWord("OF")) {
        Advance();
        if (PeekWord("INPUT")) Advance();
        int64_t of = 0;
        DE_RETURN_NOT_OK(ExpectInt64(&of, "reference input"));
        query.top_of = of;
      }
    } else {
      return Status::InvalidArgument("expected NEURONS (...) or TOP m "
                                     "NEURONS, got '" +
                                     Peek().text + "'");
    }

    // optional clauses, any order
    while (Peek().type != Token::Type::kEnd) {
      if (PeekWord("USING")) {
        Advance();
        const Token token = Peek();
        if (token.type != Token::Type::kWord) {
          return Status::InvalidArgument("expected distance after USING");
        }
        Advance();
        if (token.text == "L1") {
          query.distance = DistanceKind::kL1;
        } else if (token.text == "L2") {
          query.distance = DistanceKind::kL2;
        } else if (token.text == "LINF") {
          query.distance = DistanceKind::kLInf;
        } else {
          return Status::InvalidArgument("unknown distance '" + token.text +
                                         "' (expected L1, L2, or LINF)");
        }
      } else if (PeekWord("THETA")) {
        Advance();
        const Token token = Peek();
        if (token.type != Token::Type::kNumber) {
          return Status::InvalidArgument("expected number after THETA");
        }
        Advance();
        query.theta = token.number;
      } else {
        return Status::InvalidArgument("unexpected trailing token '" +
                                       Peek().text + "'");
      }
    }

    // semantic checks
    if (query.k < 1) return Status::InvalidArgument("TOPK k must be >= 1");
    if (query.theta <= 0.0 || query.theta > 1.0) {
      return Status::InvalidArgument("THETA must be in (0, 1]");
    }
    if (query.top_neurons == 0 && query.neurons.empty()) {
      return Status::InvalidArgument("empty neuron group");
    }
    if (query.kind == ParsedQuery::Kind::kHighest && query.top_neurons > 0 &&
        query.top_of < 0) {
      return Status::InvalidArgument(
          "HIGHEST with TOP m NEURONS requires OF <input> (no SIMILAR "
          "target to default to)");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekWord(const char* word) const {
    return Peek().type == Token::Type::kWord && Peek().text == word;
  }

  Status ExpectWord(const char* word) {
    if (!PeekWord(word)) {
      return Status::InvalidArgument("expected '" + std::string(word) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Expect(Token::Type type, const char* what) {
    if (Peek().type != type) {
      return Status::InvalidArgument("expected '" + std::string(what) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectInt64(int64_t* out, const char* what) {
    const Token& token = Peek();
    if (token.type != Token::Type::kNumber ||
        token.number != static_cast<double>(
                            static_cast<int64_t>(token.number))) {
      return Status::InvalidArgument("expected integer " + std::string(what) +
                                     ", got '" + token.text + "'");
    }
    *out = static_cast<int64_t>(token.number);
    Advance();
    return Status::OK();
  }

  Status ExpectInt(int* out, const char* what) {
    int64_t value = 0;
    DE_RETURN_NOT_OK(ExpectInt64(&value, what));
    *out = static_cast<int>(value);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParsedQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT TOPK " << k << " ";
  if (kind == Kind::kHighest) {
    out << "HIGHEST";
  } else {
    out << "SIMILAR TO " << target;
  }
  out << " FOR LAYER " << layer << " ";
  if (top_neurons > 0) {
    out << "TOP " << top_neurons << " NEURONS";
    if (top_of >= 0) out << " OF " << top_of;
  } else {
    out << "NEURONS (";
    for (size_t i = 0; i < neurons.size(); ++i) {
      if (i > 0) out << ", ";
      out << neurons[i];
    }
    out << ")";
  }
  if (distance != DistanceKind::kL2) {
    out << " USING "
        << (distance == DistanceKind::kL1 ? "L1" : "LINF");
  }
  if (theta != 1.0) out << " THETA " << theta;
  return out.str();
}

Result<ParsedQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  DE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<TopKResult> ExecuteQuery(DeepEverest* system,
                                const ParsedQuery& query) {
  if (system == nullptr) {
    return Status::InvalidArgument("null DeepEverest instance");
  }
  NeuronGroup group;
  group.layer = query.layer;
  if (query.top_neurons > 0) {
    int64_t reference = query.top_of;
    if (reference < 0) reference = query.target;
    DE_ASSIGN_OR_RETURN(
        group.neurons,
        system->MaximallyActivatedNeurons(
            static_cast<uint32_t>(reference), query.layer,
            query.top_neurons));
  } else {
    group.neurons = query.neurons;
  }

  NtaOptions options;
  options.k = query.k;
  options.theta = query.theta;
  DE_ASSIGN_OR_RETURN(options.dist, MakeDistance(query.distance));

  if (query.kind == ParsedQuery::Kind::kHighest) {
    return system->TopKHighestWithOptions(group, std::move(options));
  }
  return system->TopKMostSimilarWithOptions(
      static_cast<uint32_t>(query.target), group, std::move(options));
}

Result<TopKResult> ExecuteQuery(DeepEverest* system,
                                const std::string& text) {
  DE_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(text));
  return ExecuteQuery(system, query);
}

}  // namespace core
}  // namespace deepeverest
