#include "core/ql.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace deepeverest {
namespace core {

namespace {

/// Lexer: uppercased words, integers/floats, and the punctuation ( ) ,
struct Token {
  enum class Type { kWord, kNumber, kLParen, kRParen, kComma, kEnd };
  Type type = Type::kEnd;
  std::string text;   // uppercased for words
  double number = 0;  // for kNumber
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t pos = 0;
    while (pos < text_.size()) {
      const char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (c == '(') {
        tokens.push_back({Token::Type::kLParen, "(", 0});
        ++pos;
      } else if (c == ')') {
        tokens.push_back({Token::Type::kRParen, ")", 0});
        ++pos;
      } else if (c == ',') {
        tokens.push_back({Token::Type::kComma, ",", 0});
        ++pos;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 c == '-') {
        size_t end = pos;
        // '+' only continues a number after an exponent marker ("1e+05"):
        // %.17g output must lex back, but a stray "+" should not.
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == '-' ||
                text_[end] == 'e' || text_[end] == 'E' ||
                (text_[end] == '+' && end > pos &&
                 (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
          ++end;
        }
        const std::string number = text_.substr(pos, end - pos);
        try {
          tokens.push_back({Token::Type::kNumber, number,
                            std::stod(number)});
        } catch (...) {
          return Status::InvalidArgument("bad number '" + number + "'");
        }
        pos = end;
      } else if (std::isalpha(static_cast<unsigned char>(c))) {
        size_t end = pos;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        std::string word = text_.substr(pos, end - pos);
        for (char& ch : word) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        tokens.push_back({Token::Type::kWord, word, 0});
        pos = end;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
    }
    tokens.push_back({Token::Type::kEnd, "<end>", 0});
    return tokens;
  }

 private:
  const std::string& text_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> Parse() {
    QuerySpec spec;
    DE_RETURN_NOT_OK(ExpectWord("SELECT"));
    DE_RETURN_NOT_OK(ExpectWord("TOPK"));
    DE_RETURN_NOT_OK(ExpectInt(&spec.k, "k"));

    // kind
    if (PeekWord("HIGHEST")) {
      Advance();
      spec.kind = QuerySpec::Kind::kHighest;
    } else {
      if (PeekWord("MOST")) Advance();
      DE_RETURN_NOT_OK(ExpectWord("SIMILAR"));
      DE_RETURN_NOT_OK(ExpectWord("TO"));
      spec.kind = QuerySpec::Kind::kMostSimilar;
      DE_RETURN_NOT_OK(ExpectInt64(&spec.target_id, "target input"));
    }

    DE_RETURN_NOT_OK(ExpectWord("FOR"));
    DE_RETURN_NOT_OK(ExpectWord("LAYER"));
    DE_RETURN_NOT_OK(ExpectInt(&spec.layer, "layer"));

    // group
    if (PeekWord("NEURONS")) {
      Advance();
      DE_RETURN_NOT_OK(Expect(Token::Type::kLParen, "("));
      while (true) {
        int64_t neuron = 0;
        DE_RETURN_NOT_OK(ExpectInt64(&neuron, "neuron"));
        spec.neurons.push_back(neuron);
        if (Peek().type == Token::Type::kComma) {
          Advance();
          continue;
        }
        break;
      }
      DE_RETURN_NOT_OK(Expect(Token::Type::kRParen, ")"));
    } else if (PeekWord("TOP")) {
      Advance();
      DE_RETURN_NOT_OK(ExpectInt(&spec.top_neurons, "top-neuron count"));
      DE_RETURN_NOT_OK(ExpectWord("NEURONS"));
      if (PeekWord("OF")) {
        Advance();
        if (PeekWord("INPUT")) Advance();
        DE_RETURN_NOT_OK(ExpectInt64(&spec.top_of, "reference input"));
      }
    } else {
      return Status::InvalidArgument("expected NEURONS (...) or TOP m "
                                     "NEURONS, got '" +
                                     Peek().text + "'");
    }

    // optional clauses, any order
    while (Peek().type != Token::Type::kEnd) {
      if (PeekWord("USING")) {
        Advance();
        const Token token = Peek();
        if (token.type != Token::Type::kWord) {
          return Status::InvalidArgument("expected distance after USING");
        }
        Advance();
        if (token.text == "L1") {
          spec.distance = DistanceKind::kL1;
        } else if (token.text == "L2") {
          spec.distance = DistanceKind::kL2;
        } else if (token.text == "LINF") {
          spec.distance = DistanceKind::kLInf;
        } else {
          return Status::InvalidArgument("unknown distance '" + token.text +
                                         "' (expected L1, L2, or LINF)");
        }
      } else if (PeekWord("THETA")) {
        Advance();
        const Token token = Peek();
        if (token.type != Token::Type::kNumber) {
          return Status::InvalidArgument("expected number after THETA");
        }
        Advance();
        spec.theta = token.number;
      } else {
        return Status::InvalidArgument("unexpected trailing token '" +
                                       Peek().text + "'");
      }
    }

    // The shared choke point: QL-level semantic errors are the same
    // InvalidArgument the wire decoder and Submit produce for the same
    // malformed query.
    DE_RETURN_NOT_OK(ValidateSpec(spec));
    return spec;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekWord(const char* word) const {
    return Peek().type == Token::Type::kWord && Peek().text == word;
  }

  Status ExpectWord(const char* word) {
    if (!PeekWord(word)) {
      return Status::InvalidArgument("expected '" + std::string(word) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Expect(Token::Type type, const char* what) {
    if (Peek().type != type) {
      return Status::InvalidArgument("expected '" + std::string(what) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectInt64(int64_t* out, const char* what) {
    const Token& token = Peek();
    if (token.type != Token::Type::kNumber ||
        token.number != static_cast<double>(
                            static_cast<int64_t>(token.number))) {
      return Status::InvalidArgument("expected integer " + std::string(what) +
                                     ", got '" + token.text + "'");
    }
    *out = static_cast<int64_t>(token.number);
    Advance();
    return Status::OK();
  }

  Status ExpectInt(int* out, const char* what) {
    int64_t value = 0;
    DE_RETURN_NOT_OK(ExpectInt64(&value, what));
    *out = static_cast<int>(value);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string QuerySpec::ToString() const {
  std::ostringstream out;
  out << "SELECT TOPK " << k << " ";
  if (kind == Kind::kHighest) {
    out << "HIGHEST";
  } else {
    out << "SIMILAR TO " << target_id;
  }
  out << " FOR LAYER " << layer << " ";
  if (top_neurons > 0) {
    out << "TOP " << top_neurons << " NEURONS";
    if (top_of >= 0) out << " OF " << top_of;
  } else {
    out << "NEURONS (";
    for (size_t i = 0; i < neurons.size(); ++i) {
      if (i > 0) out << ", ";
      out << neurons[i];
    }
    out << ")";
  }
  if (distance != DistanceKind::kL2) {
    out << " USING "
        << (distance == DistanceKind::kL1 ? "L1" : "LINF");
  }
  if (theta != 1.0) {
    // 17 significant digits: the text form re-parses to the identical bits
    // (the same contract the JSON writer keeps for the wire).
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", theta);
    out << " THETA " << buffer;
  }
  return out.str();
}

Result<QuerySpec> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  DE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace core
}  // namespace deepeverest
