#ifndef DEEPEVEREST_CORE_INDEX_MANAGER_H_
#define DEEPEVEREST_CORE_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "core/npi.h"
#include "nn/inference.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace core {

/// \brief Wall-clock breakdown of building one layer's index, matching the
/// paper's Figure 10 components.
struct PreprocessTimings {
  double inference_seconds = 0.0;  // DNN inference over the dataset
  double index_seconds = 0.0;      // sort & partition, MAI extraction
  double persist_seconds = 0.0;    // serialisation + write (+fsync)

  PreprocessTimings& operator+=(const PreprocessTimings& other) {
    inference_seconds += other.inference_seconds;
    index_seconds += other.index_seconds;
    persist_seconds += other.persist_seconds;
    return *this;
  }
};

struct IndexManagerOptions {
  LayerIndexConfig layer_config;
  /// Persist freshly built indexes to the FileStore (incremental indexing
  /// keeps them across sessions). Off keeps everything in memory.
  bool persist = true;
  /// fsync on persist (the paper force-writes when timing preprocessing).
  bool force_sync = false;
};

/// \brief Builds, persists, loads, and caches per-layer indexes — the
/// incremental indexing strategy of paper §4.6.
///
/// No preprocessing happens up front: the first query against a layer pays
/// for one full-dataset inference pass over that layer, builds NPI+MAI from
/// the computed activations, and persists them. Later queries (and later
/// sessions pointing at the same FileStore) reuse the index.
///
/// Thread-safety: EnsureIndex/IsIndexed/IsLoaded are safe to call
/// concurrently. Index construction is build-once/read-many: a per-layer
/// build mutex serialises builders of the *same* layer (the losers wait and
/// then reuse the winner's index, so the expensive full-dataset inference
/// pass runs exactly once per layer), while different layers build in
/// parallel. Returned LayerIndex pointers stay valid for the manager's
/// lifetime — `loaded_` is a node-based map, so inserts never move existing
/// entries.
class IndexManager {
 public:
  /// Does not take ownership; all pointers must outlive the manager.
  IndexManager(nn::InferenceEngine* inference, storage::FileStore* store,
               IndexManagerOptions options)
      : inference_(inference), store_(store), options_(std::move(options)) {}

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Returns the index for `layer`, building it incrementally if missing.
  /// When the index had to be built, the full activation matrix computed in
  /// the process is moved into `*fresh_acts` (if non-null) so the caller
  /// can answer the triggering query from it directly — exactly the §4.6
  /// flow. `timings`, if non-null, receives the build-cost breakdown (zeros
  /// when the index was already available). `receipt`, if non-null, is
  /// charged the build's inference — only callers that actually performed
  /// the build pay; losers of a build race (and disk loads) add nothing.
  Result<const LayerIndex*> EnsureIndex(
      int layer, storage::LayerActivationMatrix* fresh_acts = nullptr,
      PreprocessTimings* timings = nullptr,
      nn::InferenceReceipt* receipt = nullptr);

  /// Whether the layer's index exists in memory or on disk.
  bool IsIndexed(int layer) const;

  /// True only if the index is already loaded in memory.
  bool IsLoaded(int layer) const {
    common::ReaderMutexLock lock(&mu_);
    return loaded_.count(layer) != 0;
  }

  /// Builds indexes for every model layer front to back (the paper's
  /// extreme preprocessing experiment, Figure 10). Accumulates timings.
  Status PreprocessAllLayers(PreprocessTimings* timings = nullptr);

  /// Bytes of index data persisted so far (0 if persistence is off).
  Result<uint64_t> PersistedBytes() const;

  static std::string KeyFor(const std::string& model_name, int layer);

  const IndexManagerOptions& options() const { return options_; }

 private:
  Result<const LayerIndex*> BuildIndex(
      int layer, storage::LayerActivationMatrix* fresh_acts,
      PreprocessTimings* timings, nn::InferenceReceipt* receipt);

  /// Returns the loaded index for `layer`, or nullptr. Takes mu_ shared.
  const LayerIndex* FindLoaded(int layer) const;

  /// The per-layer mutex serialising builders of `layer`. Takes build_map_mu_.
  common::Mutex* BuildMutexFor(int layer);

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  IndexManagerOptions options_;

  /// Guards loaded_. Readers (queries on indexed layers) take it shared.
  /// Returned LayerIndex pointers legitimately outlive the lock (loaded_ is
  /// a node-based map and entries are never removed — see the class
  /// comment), so only map access itself is annotated.
  mutable common::SharedMutex mu_;
  std::map<int, LayerIndex> loaded_ GUARDED_BY(mu_);

  /// Guards build_mu_; never held while building.
  common::Mutex build_map_mu_;
  std::map<int, std::unique_ptr<common::Mutex>> build_mu_
      GUARDED_BY(build_map_mu_);
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_INDEX_MANAGER_H_
