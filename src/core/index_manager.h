#ifndef DEEPEVEREST_CORE_INDEX_MANAGER_H_
#define DEEPEVEREST_CORE_INDEX_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "core/npi.h"
#include "nn/inference.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace core {

/// \brief Wall-clock breakdown of building one layer's index, matching the
/// paper's Figure 10 components.
struct PreprocessTimings {
  double inference_seconds = 0.0;  // DNN inference over the dataset
  double index_seconds = 0.0;      // sort & partition, MAI extraction
  double persist_seconds = 0.0;    // serialisation + write (+fsync)

  PreprocessTimings& operator+=(const PreprocessTimings& other) {
    inference_seconds += other.inference_seconds;
    index_seconds += other.index_seconds;
    persist_seconds += other.persist_seconds;
    return *this;
  }
};

struct IndexManagerOptions {
  LayerIndexConfig layer_config;
  /// Persist freshly built indexes to the FileStore (incremental indexing
  /// keeps them across sessions). Off keeps everything in memory.
  bool persist = true;
  /// fsync on persist (the paper force-writes when timing preprocessing).
  bool force_sync = false;
};

/// Immutable, shared view of one layer's index. Queries hold a reference for
/// their whole lifetime, pinning the dataset version (== num_inputs()) they
/// started at even if ingest swaps in a newer index underneath them.
using LayerIndexPtr = std::shared_ptr<const LayerIndex>;

/// \brief Builds, persists, loads, merges, and caches per-layer indexes —
/// the incremental indexing strategy of paper §4.6, extended with live
/// appends for the ingest path.
///
/// No preprocessing happens up front: the first query against a layer pays
/// for one full-dataset inference pass over that layer, builds NPI+MAI from
/// the computed activations, and persists them. Later queries (and later
/// sessions pointing at the same FileStore) reuse the index.
///
/// Thread-safety: all public methods are safe to call concurrently. Index
/// construction is build-once/read-many: a per-layer build mutex serialises
/// builders/mergers of the *same* layer (the losers wait and then reuse the
/// winner's index, so the expensive full-dataset inference pass runs exactly
/// once per layer), while different layers build in parallel. Loaded indexes
/// are immutable and handed out as shared_ptr; CatchUp replaces the pointer
/// wholesale, so readers of the old version are never invalidated.
class IndexManager {
 public:
  /// Does not take ownership; all pointers must outlive the manager.
  IndexManager(nn::InferenceEngine* inference, storage::FileStore* store,
               IndexManagerOptions options)
      : inference_(inference), store_(store), options_(std::move(options)) {}

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Returns the index for `layer`, building it incrementally if missing.
  /// When the index had to be built, the full activation matrix computed in
  /// the process is moved into `*fresh_acts` (if non-null) so the caller
  /// can answer the triggering query from it directly — exactly the §4.6
  /// flow. `timings`, if non-null, receives the build-cost breakdown (zeros
  /// when the index was already available). `receipt`, if non-null, is
  /// charged the build's inference — only callers that actually performed
  /// the build pay; losers of a build race (and disk loads) add nothing.
  Result<LayerIndexPtr> EnsureIndex(
      int layer, storage::LayerActivationMatrix* fresh_acts = nullptr,
      PreprocessTimings* timings = nullptr,
      nn::InferenceReceipt* receipt = nullptr);

  /// The loaded index for `layer`, or nullptr (never touches disk).
  LayerIndexPtr Peek(int layer) const;

  /// Layers currently loaded in memory, ascending.
  std::vector<int> LoadedLayers() const;

  /// Installs an externally restored index (snapshot load at startup),
  /// replacing any loaded entry for `layer`. Does not persist to the legacy
  /// per-layer key — the snapshot is the durable copy.
  Status InstallIndex(int layer, LayerIndex index);

  /// Merges inputs [index.num_inputs, target_size) into `layer`'s loaded
  /// index: inference on just the new rows, incremental NPI/MAI insert,
  /// atomic persist, pointer swap. No-op when already caught up; error if
  /// the layer was never built (first query builds at full size anyway).
  /// Serialises with concurrent builders via the per-layer build mutex.
  Status CatchUp(int layer, uint32_t target_size,
                 nn::InferenceReceipt* receipt = nullptr);

  /// Whether the layer's index exists in memory or on disk.
  bool IsIndexed(int layer) const;

  /// True only if the index is already loaded in memory.
  bool IsLoaded(int layer) const {
    common::ReaderMutexLock lock(&mu_);
    return loaded_.count(layer) != 0;
  }

  /// Builds indexes for every model layer front to back (the paper's
  /// extreme preprocessing experiment, Figure 10). Accumulates timings.
  Status PreprocessAllLayers(PreprocessTimings* timings = nullptr);

  /// Bytes of index data persisted so far (0 if persistence is off).
  Result<uint64_t> PersistedBytes() const;

  static std::string KeyFor(const std::string& model_name, int layer);

  /// Called (without internal locks held) whenever a persisted index for
  /// `layer` fails validation and is discarded for a rebuild — the hook that
  /// lets the engine drop derived caches (IqaCache) for that layer.
  void set_index_invalidation_hook(std::function<void(int)> hook) {
    on_index_invalidated_ = std::move(hook);
  }

  const IndexManagerOptions& options() const { return options_; }

 private:
  Result<LayerIndexPtr> BuildIndex(int layer,
                                   storage::LayerActivationMatrix* fresh_acts,
                                   PreprocessTimings* timings,
                                   nn::InferenceReceipt* receipt);

  /// Serialises `index` inside a checksum envelope and atomically replaces
  /// the layer's persisted file (no-op when persistence is off).
  Status PersistIndex(int layer, const LayerIndex& index,
                      double* persist_seconds);

  /// Computes activations for input ids [base, base + count) of `layer`.
  Result<storage::LayerActivationMatrix> ComputeRows(
      int layer, uint32_t base, uint32_t count, nn::InferenceReceipt* receipt);

  /// Stores `index` as the loaded entry for `layer` (insert or replace).
  LayerIndexPtr Publish(int layer, LayerIndex index);

  /// The per-layer mutex serialising builders of `layer`. Takes build_map_mu_.
  common::Mutex* BuildMutexFor(int layer);

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  IndexManagerOptions options_;
  std::function<void(int)> on_index_invalidated_;

  /// Guards loaded_. Readers (queries on indexed layers) take it shared.
  mutable common::SharedMutex mu_;
  std::map<int, LayerIndexPtr> loaded_ GUARDED_BY(mu_);

  /// Guards build_mu_; never held while building.
  common::Mutex build_map_mu_;
  std::map<int, std::unique_ptr<common::Mutex>> build_mu_
      GUARDED_BY(build_map_mu_);
};

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_INDEX_MANAGER_H_
