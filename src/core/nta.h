#ifndef DEEPEVEREST_CORE_NTA_H_
#define DEEPEVEREST_CORE_NTA_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/distance.h"
#include "core/iqa_cache.h"
#include "core/npi.h"
#include "core/query.h"
#include "nn/inference.h"

namespace deepeverest {
namespace nn {
class BatchingInferenceScheduler;
}  // namespace nn

namespace core {

/// \brief Per-round progress snapshot for incremental result return and
/// user-driven early stopping (paper section 6).
struct NtaProgress {
  int64_t round = 0;
  /// Current threshold t: no unseen input can beat it.
  double threshold = 0.0;
  /// Worst value currently in the top-k set (+inf / -inf if not yet full).
  double kth_value = 0.0;
  /// For most-similar queries: the θ such that the current top-k is a
  /// θ-approximation of the true answer (t / kth_dist, clamped to [0, 1]).
  double theta_guarantee = 0.0;
  /// Entries already *proven* to belong to the final top-k (dist <= t).
  std::vector<ResultEntry> confirmed;
};

/// \brief Options controlling one NTA execution.
struct NtaOptions {
  int k = 20;
  /// Monotonic aggregation function; nullptr selects l2 (paper default).
  DistancePtr dist;
  /// θ-approximation factor in (0, 1]; 1.0 returns the exact answer. For
  /// most-similar queries termination relaxes to max(top) <= t/θ (eq. 6);
  /// for highest queries, kth >= θ*T.
  double theta = 1.0;
  /// Use the Maximum Activation Index fast path when the index has one.
  bool use_mai = true;
  /// Optional Inter-Query Acceleration cache consulted before inference.
  IqaCache* iqa = nullptr;
  /// When set, inference routes through this shared cross-query batching
  /// scheduler instead of calling the engine directly, so co-scheduled
  /// queries fill each other's device batches. Per-query stats stay exact
  /// either way (receipt metering).
  nn::BatchingInferenceScheduler* scheduler = nullptr;
  /// Tie-complete termination: stop only once the k-th value beats the
  /// threshold *strictly*, so every input tied with the k-th value gets
  /// evaluated and the result matches a full activation scan bit-for-bit
  /// (canonical (value, input id) order). Fixes the §4.6 cold-start
  /// nondeterminism where NTA and the fresh-scan path could legitimately
  /// pick different ids on exact value ties at the k-th boundary. May
  /// evaluate more inputs than strictly necessary for *a* valid top-k.
  /// The canonical-result guarantee applies to exact queries (theta == 1);
  /// with theta < 1 the strict comparison still applies but the result is
  /// only a θ-approximation and remains dependent on how far the run got.
  bool tie_complete = false;
  /// Invoked after each round; return false to stop early with the current
  /// (θ-guaranteed) top-k.
  std::function<bool(const NtaProgress&)> on_progress;
};

/// \brief The Neural Threshold Algorithm (paper section 4.4, Algorithm 1).
///
/// Executes top-k queries against one layer using that layer's LayerIndex,
/// running DNN inference only on the partitions of inputs that can still
/// affect the answer. Instance optimal in the number of inputs accessed
/// (Theorem 4.1).
class NtaEngine {
 public:
  /// Does not take ownership; both must outlive the engine.
  NtaEngine(nn::InferenceEngine* inference, const LayerIndex* index)
      : inference_(inference), index_(index) {}

  NtaEngine(const NtaEngine&) = delete;
  NtaEngine& operator=(const NtaEngine&) = delete;

  /// Top-k most-similar to dataset input `target_id` (excluded from the
  /// result set, as in the paper's worked example). Computes the target's
  /// activations with one inference pass (step 2).
  Result<TopKResult> MostSimilarTo(const NeuronGroup& group,
                                   uint32_t target_id,
                                   const NtaOptions& options);

  /// Top-k most-similar to an arbitrary target activation vector (one value
  /// per neuron in `group`), e.g. for out-of-dataset probes.
  Result<TopKResult> MostSimilar(const NeuronGroup& group,
                                 const std::vector<float>& target_acts,
                                 const NtaOptions& options);

  /// Top-k highest: the k inputs with the largest dist-aggregated
  /// activations for `group`. Requires non-negative activations (true for
  /// the ReLU layers DeepEverest queries).
  Result<TopKResult> Highest(const NeuronGroup& group,
                             const NtaOptions& options);

 private:
  struct RunState;

  Result<TopKResult> MostSimilarImpl(const NeuronGroup& group,
                                     const std::vector<float>& target_acts,
                                     const NtaOptions& options,
                                     bool has_target_id, uint32_t target_id);

  Status ValidateGroup(const NeuronGroup& group) const;

  /// Computes group activations for `ids` (deduplicated against rows already
  /// known), consulting the IQA cache first and batching the rest through
  /// the inference engine. IDs that became known by this call are appended
  /// to `newly` (each input becomes known exactly once per query).
  Status Evaluate(const NeuronGroup& group, const std::vector<uint32_t>& ids,
                  const NtaOptions& options, RunState* state,
                  std::vector<uint32_t>* newly);

  nn::InferenceEngine* inference_;
  const LayerIndex* index_;
};

/// \brief Reference brute-force executors used by tests and baselines: they
/// compute activations for every input and scan. These define the ground
/// truth NTA must match.
Result<TopKResult> BruteForceMostSimilar(nn::InferenceEngine* inference,
                                         const NeuronGroup& group,
                                         const std::vector<float>& target_acts,
                                         int k, const DistancePtr& dist,
                                         bool exclude_target,
                                         uint32_t target_id);

Result<TopKResult> BruteForceHighest(nn::InferenceEngine* inference,
                                     const NeuronGroup& group, int k,
                                     const DistancePtr& dist);

/// \brief Scans a fully materialised activation matrix (shared by the
/// PreprocessAll/caching baselines, which differ only in where the matrix
/// comes from). Results are sorted best-first.
TopKResult ScanMostSimilar(const storage::LayerActivationMatrix& matrix,
                           const std::vector<int64_t>& neurons,
                           const std::vector<float>& target_acts, int k,
                           const DistancePtr& dist, bool exclude_target,
                           uint32_t target_id);

TopKResult ScanHighest(const storage::LayerActivationMatrix& matrix,
                       const std::vector<int64_t>& neurons, int k,
                       const DistancePtr& dist);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_NTA_H_
