#ifndef DEEPEVEREST_CORE_NTA_H_
#define DEEPEVEREST_CORE_NTA_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/distance.h"
#include "core/iqa_cache.h"
#include "core/npi.h"
#include "core/query.h"
#include "core/query_context.h"
#include "nn/inference.h"

namespace deepeverest {
namespace core {

/// \brief Options controlling one NTA execution: the query *parameters*.
///
/// Per-query execution plumbing (QoS class, deadline, cancellation, receipt
/// accumulation, progress sink, IQA cache, batch scheduler) lives in
/// QueryContext, which is threaded through every layer separately.
struct NtaOptions {
  int k = 20;
  /// Monotonic aggregation function; nullptr selects l2 (paper default).
  DistancePtr dist;
  /// θ-approximation factor in (0, 1]; 1.0 returns the exact answer. For
  /// most-similar queries termination relaxes to max(top) <= t/θ (eq. 6);
  /// for highest queries, kth >= θ*T.
  double theta = 1.0;
  /// Use the Maximum Activation Index fast path when the index has one.
  bool use_mai = true;
  /// Tie-complete termination: stop only once the k-th value beats the
  /// threshold *strictly*, so every input tied with the k-th value gets
  /// evaluated and the result matches a full activation scan bit-for-bit
  /// (canonical (value, input id) order). Fixes the §4.6 cold-start
  /// nondeterminism where NTA and the fresh-scan path could legitimately
  /// pick different ids on exact value ties at the k-th boundary. May
  /// evaluate more inputs than strictly necessary for *a* valid top-k.
  /// The canonical-result guarantee applies to exact queries (theta == 1);
  /// with theta < 1 the strict comparison still applies but the result is
  /// only a θ-approximation and remains dependent on how far the run got.
  bool tie_complete = false;
};

class NtaEngine;

/// \brief One in-flight NTA query as a first-class, resumable object: the
/// candidate top-k set, the threshold state, the per-neuron sorted-access
/// cursors (MAI and partition), and the IQA/receipt bookkeeping all live
/// here instead of on a run-to-completion stack frame.
///
/// Created by NtaEngine::Begin{MostSimilarTo,MostSimilar,Highest}(). Each
/// `Step()` runs exactly one unit of work — the target-evaluation prologue
/// or one NTA round — and returns with all state checkpointed, so a caller
/// may stop between rounds, hand the object to another thread, and continue
/// later. Results are bit-identical to an uninterrupted run: the round
/// structure, threshold arithmetic, and tie-complete termination are
/// exactly those of the former run-to-completion loop.
///
/// Ownership/threading: the execution is NOT internally synchronised. It is
/// single-owner state — at most one thread may call Step()/Run()/
/// TakeResult() at a time, and a handoff between threads must be ordered by
/// an external synchronisation point (the QueryService hands executions off
/// through its mutex-guarded dispatch queue). The QueryContext passed at
/// Begin must outlive the execution; cancellation/deadline are re-checked
/// via that context at the start of every Step, so a resumed execution
/// whose deadline passed while it was parked aborts before doing any work.
class NtaExecution {
 public:
  ~NtaExecution();
  NtaExecution(const NtaExecution&) = delete;
  NtaExecution& operator=(const NtaExecution&) = delete;

  /// Runs one unit of work (at most one NTA round). A non-OK status
  /// (Cancelled, DeadlineExceeded, inference failure) finishes the
  /// execution: `done()` becomes true and TakeResult() returns the same
  /// status. Calling Step() once done is a no-op.
  Status Step();

  /// True once the query finished — answer complete, early-terminated,
  /// stopped by the progress sink, or failed.
  bool done() const;

  /// Steps until done() or until `should_yield` returns true between
  /// rounds. Returns OK when yielding; otherwise the terminal status.
  Status RunUntil(const std::function<bool()>& should_yield);

  /// Steps to completion and returns the final result.
  Result<TopKResult> Run();

  /// After done(): the final result (entries plus receipt-metered stats
  /// over the whole execution), or the terminal error. `wall_seconds` is
  /// the accumulated *active* stepping time — time spent parked between
  /// Step calls is not attributed to the query.
  Result<TopKResult> TakeResult();

 private:
  friend class NtaEngine;
  struct Impl;
  explicit NtaExecution(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// \brief The Neural Threshold Algorithm (paper section 4.4, Algorithm 1).
///
/// Executes top-k queries against one layer using that layer's LayerIndex,
/// running DNN inference only on the partitions of inputs that can still
/// affect the answer. Instance optimal in the number of inputs accessed
/// (Theorem 4.1).
///
/// The engine has ONE execution mechanism: Begin*() returns a resumable
/// NtaExecution that is stepped one round at a time. The run-to-completion
/// entry points below are thin Begin+Run wrappers kept for component-level
/// callers; there is no separate non-resumable path.
///
/// All query entry points take an optional QueryContext carrying the
/// query's execution plumbing (QoS class, deadline, cancellation, receipt,
/// progress sink, IQA cache, batch scheduler). The context is checked
/// between rounds, so an expired deadline or a cancellation aborts within
/// one round (DeadlineExceeded / Cancelled). Passing nullptr runs with a
/// default context (no deadline, direct inference, no IQA).
class NtaEngine {
 public:
  /// Does not take ownership; both must outlive the engine AND any
  /// execution it begins.
  NtaEngine(nn::InferenceEngine* inference, const LayerIndex* index)
      : inference_(inference), index_(index) {}

  NtaEngine(const NtaEngine&) = delete;
  NtaEngine& operator=(const NtaEngine&) = delete;

  /// Begins a resumable top-k most-similar query against dataset input
  /// `target_id` (excluded from the result set, as in the paper's worked
  /// example; its activations cost one inference pass in the first Step).
  /// `ctx` must be non-null and outlive the returned execution.
  Result<std::unique_ptr<NtaExecution>> BeginMostSimilarTo(
      const NeuronGroup& group, uint32_t target_id, const NtaOptions& options,
      QueryContext* ctx);

  /// Begins a resumable most-similar query against an arbitrary target
  /// activation vector (one value per neuron in `group`), e.g. for
  /// out-of-dataset probes.
  Result<std::unique_ptr<NtaExecution>> BeginMostSimilar(
      const NeuronGroup& group, const std::vector<float>& target_acts,
      const NtaOptions& options, QueryContext* ctx);

  /// Begins a resumable top-k highest query: the k inputs with the largest
  /// dist-aggregated activations for `group`. Requires non-negative
  /// activations (true for the ReLU layers DeepEverest queries).
  Result<std::unique_ptr<NtaExecution>> BeginHighest(const NeuronGroup& group,
                                                     const NtaOptions& options,
                                                     QueryContext* ctx);

  /// Begin + Run conveniences (identical semantics and results).
  Result<TopKResult> MostSimilarTo(const NeuronGroup& group,
                                   uint32_t target_id,
                                   const NtaOptions& options,
                                   QueryContext* ctx = nullptr);
  Result<TopKResult> MostSimilar(const NeuronGroup& group,
                                 const std::vector<float>& target_acts,
                                 const NtaOptions& options,
                                 QueryContext* ctx = nullptr);
  Result<TopKResult> Highest(const NeuronGroup& group,
                             const NtaOptions& options,
                             QueryContext* ctx = nullptr);

 private:
  Status ValidateGroup(const NeuronGroup& group) const;

  nn::InferenceEngine* inference_;
  const LayerIndex* index_;
};

/// \brief Reference brute-force executors used by tests and baselines: they
/// compute activations for every input and scan. These define the ground
/// truth NTA must match.
Result<TopKResult> BruteForceMostSimilar(nn::InferenceEngine* inference,
                                         const NeuronGroup& group,
                                         const std::vector<float>& target_acts,
                                         int k, const DistancePtr& dist,
                                         bool exclude_target,
                                         uint32_t target_id);

Result<TopKResult> BruteForceHighest(nn::InferenceEngine* inference,
                                     const NeuronGroup& group, int k,
                                     const DistancePtr& dist);

/// \brief Scans a fully materialised activation matrix (shared by the
/// PreprocessAll/caching baselines, which differ only in where the matrix
/// comes from). Results are sorted best-first.
TopKResult ScanMostSimilar(const storage::LayerActivationMatrix& matrix,
                           const std::vector<int64_t>& neurons,
                           const std::vector<float>& target_acts, int k,
                           const DistancePtr& dist, bool exclude_target,
                           uint32_t target_id);

TopKResult ScanHighest(const storage::LayerActivationMatrix& matrix,
                       const std::vector<int64_t>& neurons, int k,
                       const DistancePtr& dist);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_NTA_H_
