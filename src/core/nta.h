#ifndef DEEPEVEREST_CORE_NTA_H_
#define DEEPEVEREST_CORE_NTA_H_

#include <vector>

#include "common/result.h"
#include "core/distance.h"
#include "core/iqa_cache.h"
#include "core/npi.h"
#include "core/query.h"
#include "core/query_context.h"
#include "nn/inference.h"

namespace deepeverest {
namespace core {

/// \brief Options controlling one NTA execution: the query *parameters*.
///
/// Per-query execution plumbing (QoS class, deadline, cancellation, receipt
/// accumulation, progress sink, IQA cache, batch scheduler) lives in
/// QueryContext, which is threaded through every layer separately.
struct NtaOptions {
  int k = 20;
  /// Monotonic aggregation function; nullptr selects l2 (paper default).
  DistancePtr dist;
  /// θ-approximation factor in (0, 1]; 1.0 returns the exact answer. For
  /// most-similar queries termination relaxes to max(top) <= t/θ (eq. 6);
  /// for highest queries, kth >= θ*T.
  double theta = 1.0;
  /// Use the Maximum Activation Index fast path when the index has one.
  bool use_mai = true;
  /// Tie-complete termination: stop only once the k-th value beats the
  /// threshold *strictly*, so every input tied with the k-th value gets
  /// evaluated and the result matches a full activation scan bit-for-bit
  /// (canonical (value, input id) order). Fixes the §4.6 cold-start
  /// nondeterminism where NTA and the fresh-scan path could legitimately
  /// pick different ids on exact value ties at the k-th boundary. May
  /// evaluate more inputs than strictly necessary for *a* valid top-k.
  /// The canonical-result guarantee applies to exact queries (theta == 1);
  /// with theta < 1 the strict comparison still applies but the result is
  /// only a θ-approximation and remains dependent on how far the run got.
  bool tie_complete = false;
};

/// \brief The Neural Threshold Algorithm (paper section 4.4, Algorithm 1).
///
/// Executes top-k queries against one layer using that layer's LayerIndex,
/// running DNN inference only on the partitions of inputs that can still
/// affect the answer. Instance optimal in the number of inputs accessed
/// (Theorem 4.1).
///
/// All query entry points take an optional QueryContext carrying the
/// query's execution plumbing (QoS class, deadline, cancellation, receipt,
/// progress sink, IQA cache, batch scheduler). The context is checked
/// between rounds, so an expired deadline or a cancellation aborts within
/// one round (DeadlineExceeded / Cancelled). Passing nullptr runs with a
/// default context (no deadline, direct inference, no IQA).
class NtaEngine {
 public:
  /// Does not take ownership; both must outlive the engine.
  NtaEngine(nn::InferenceEngine* inference, const LayerIndex* index)
      : inference_(inference), index_(index) {}

  NtaEngine(const NtaEngine&) = delete;
  NtaEngine& operator=(const NtaEngine&) = delete;

  /// Top-k most-similar to dataset input `target_id` (excluded from the
  /// result set, as in the paper's worked example). Computes the target's
  /// activations with one inference pass (step 2).
  Result<TopKResult> MostSimilarTo(const NeuronGroup& group,
                                   uint32_t target_id,
                                   const NtaOptions& options,
                                   QueryContext* ctx = nullptr);

  /// Top-k most-similar to an arbitrary target activation vector (one value
  /// per neuron in `group`), e.g. for out-of-dataset probes.
  Result<TopKResult> MostSimilar(const NeuronGroup& group,
                                 const std::vector<float>& target_acts,
                                 const NtaOptions& options,
                                 QueryContext* ctx = nullptr);

  /// Top-k highest: the k inputs with the largest dist-aggregated
  /// activations for `group`. Requires non-negative activations (true for
  /// the ReLU layers DeepEverest queries).
  Result<TopKResult> Highest(const NeuronGroup& group,
                             const NtaOptions& options,
                             QueryContext* ctx = nullptr);

 private:
  struct RunState;

  Result<TopKResult> MostSimilarImpl(const NeuronGroup& group,
                                     const std::vector<float>& target_acts,
                                     const NtaOptions& options,
                                     QueryContext* ctx, bool has_target_id,
                                     uint32_t target_id);

  Status ValidateGroup(const NeuronGroup& group) const;

  /// Computes group activations for `ids` (deduplicated against rows already
  /// known), consulting the context's IQA cache first and batching the rest
  /// through the context's scheduler (or the engine directly). IDs that
  /// became known by this call are appended to `newly` (each input becomes
  /// known exactly once per query). Inference cost lands in ctx->receipt.
  Status Evaluate(const NeuronGroup& group, const std::vector<uint32_t>& ids,
                  QueryContext* ctx, RunState* state,
                  std::vector<uint32_t>* newly);

  nn::InferenceEngine* inference_;
  const LayerIndex* index_;
};

/// \brief Reference brute-force executors used by tests and baselines: they
/// compute activations for every input and scan. These define the ground
/// truth NTA must match.
Result<TopKResult> BruteForceMostSimilar(nn::InferenceEngine* inference,
                                         const NeuronGroup& group,
                                         const std::vector<float>& target_acts,
                                         int k, const DistancePtr& dist,
                                         bool exclude_target,
                                         uint32_t target_id);

Result<TopKResult> BruteForceHighest(nn::InferenceEngine* inference,
                                     const NeuronGroup& group, int k,
                                     const DistancePtr& dist);

/// \brief Scans a fully materialised activation matrix (shared by the
/// PreprocessAll/caching baselines, which differ only in where the matrix
/// comes from). Results are sorted best-first.
TopKResult ScanMostSimilar(const storage::LayerActivationMatrix& matrix,
                           const std::vector<int64_t>& neurons,
                           const std::vector<float>& target_acts, int k,
                           const DistancePtr& dist, bool exclude_target,
                           uint32_t target_id);

TopKResult ScanHighest(const storage::LayerActivationMatrix& matrix,
                       const std::vector<int64_t>& neurons, int k,
                       const DistancePtr& dist);

}  // namespace core
}  // namespace deepeverest

#endif  // DEEPEVEREST_CORE_NTA_H_
