#include "core/nta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "nn/batch_scheduler.h"

namespace deepeverest {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Keeps the k best (input, value) pairs seen so far. For most-similar
/// queries smaller values are better; for highest queries larger are better.
class TopKSet {
 public:
  TopKSet(int k, bool smaller_is_better)
      : k_(static_cast<size_t>(k)), smaller_is_better_(smaller_is_better) {}

  void Offer(uint32_t id, double value) {
    // Total order on (value, id): ties go to the smaller input id. "Ties are
    // broken arbitrarily" in the paper, but a total order makes the kept set
    // independent of arrival order — required for the concurrent query
    // service, where IQA cache state (and hence evaluation order inside a
    // round) varies with scheduling.
    if (entries_.size() == k_ &&
        !BetterEntry(id, value, entries_.back().input_id,
                     entries_.back().value)) {
      return;
    }
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), ResultEntry{id, value},
        [this](const ResultEntry& a, const ResultEntry& b) {
          return BetterEntry(a.input_id, a.value, b.input_id, b.value);
        });
    entries_.insert(it, ResultEntry{id, value});
    if (entries_.size() > k_) entries_.pop_back();
  }

  bool full() const { return entries_.size() == k_; }
  size_t size() const { return entries_.size(); }

  /// The k-th best value; worst-possible sentinel when not yet full.
  double WorstValue() const {
    if (!full()) return smaller_is_better_ ? kInf : -kInf;
    return entries_.back().value;
  }

  const std::vector<ResultEntry>& entries() const { return entries_; }

 private:
  bool Better(double a, double b) const {
    return smaller_is_better_ ? a < b : a > b;
  }
  bool BetterEntry(uint32_t id_a, double a, uint32_t id_b, double b) const {
    if (a != b) return Better(a, b);
    return id_a < id_b;
  }

  size_t k_;
  bool smaller_is_better_;
  std::vector<ResultEntry> entries_;  // sorted best-first
};

Status ValidateOptions(const NtaOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(options.theta > 0.0) || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  return Status::OK();
}

/// Group activations learned so far plus the IQA hit count — the dedup set
/// every Evaluate call consults.
struct RunState {
  std::unordered_map<uint32_t, std::vector<float>> acts;
  int64_t iqa_hits = 0;
};

/// Per-neuron cursor over the similarity-ordered MAI entries (§4.7.1),
/// checkpointed between rounds.
struct MaiCursor {
  size_t gi = 0;                // position within the group
  std::vector<uint32_t> order;  // MAI ranks sorted by |act - s| asc
  size_t next = 0;
  bool seen_highest = false;  // H_i: consumed the rank-0 (max act) entry
  double min_seen = kInf;
  double max_seen = -kInf;
};

/// Computes group activations for `ids` (deduplicated against rows already
/// known), consulting the context's IQA cache first and batching the rest
/// through the context's scheduler (or the engine directly). IDs that
/// became known by this call are appended to `newly` (each input becomes
/// known exactly once per query). Inference cost lands in ctx->receipt.
Status EvaluateGroup(nn::InferenceEngine* inference, const NeuronGroup& group,
                     const std::vector<uint32_t>& ids, QueryContext* ctx,
                     RunState* state, std::vector<uint32_t>* newly) {
  std::vector<uint32_t> to_infer;
  for (uint32_t id : ids) {
    if (state->acts.count(id) != 0) continue;
    if (ctx->iqa != nullptr) {
      std::vector<float> acts;
      if (ctx->iqa->Gather(group.layer, id, group.neurons, &acts)) {
        state->acts.emplace(id, std::move(acts));
        ++state->iqa_hits;
        newly->push_back(id);
        continue;
      }
    }
    to_infer.push_back(id);
  }
  if (to_infer.empty()) return Status::OK();

  std::vector<std::vector<float>> rows;
  {
    // `batches_share` is this call's fractional share of (possibly shared)
    // device batches straight from the receipt delta, so a span tree shows
    // exactly how much of a cross-query batch this query paid for. The key
    // is `inputs` (not `inputs_run`): only round-level spans carry the
    // `inputs_run` attributes that clients sum against the receipt total.
    SpanScope span(ctx->trace.get(), "compute_layer");
    const nn::InferenceReceipt before = ctx->receipt;
    if (ctx->scheduler != nullptr) {
      DE_RETURN_NOT_OK(ctx->scheduler->ComputeLayer(to_infer, group.layer,
                                                    &rows, &ctx->receipt,
                                                    ctx->qos));
    } else {
      DE_RETURN_NOT_OK(inference->ComputeLayer(to_infer, group.layer, &rows,
                                               &ctx->receipt));
    }
    span.AddInt("inputs", static_cast<int64_t>(to_infer.size()));
    span.AddDouble("batches_share",
                   ctx->receipt.batches_run - before.batches_run);
    span.AddDouble(
        "gpu_seconds",
        ctx->receipt.simulated_gpu_seconds - before.simulated_gpu_seconds);
  }
  for (size_t r = 0; r < to_infer.size(); ++r) {
    const uint32_t id = to_infer[r];
    std::vector<float> acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      acts[i] = rows[r][static_cast<size_t>(group.neurons[i])];
    }
    state->acts.emplace(id, std::move(acts));
    newly->push_back(id);
    if (ctx->iqa != nullptr) {
      // Cache the full layer row so related queries over *other* neuron
      // groups in this layer also benefit (section 4.7.3).
      ctx->iqa->Insert(group.layer, id, std::move(rows[r]));
    }
  }
  return Status::OK();
}

/// Charges a Step's wall time to the execution's active-time accumulator on
/// every exit path, so `wall_seconds` covers exactly the time spent
/// stepping — parked intervals between Step calls cost the query nothing.
class ActiveTimeCharge {
 public:
  explicit ActiveTimeCharge(double* acc) : acc_(acc) {}
  ~ActiveTimeCharge() { *acc_ += watch_.ElapsedSeconds(); }
  ActiveTimeCharge(const ActiveTimeCharge&) = delete;
  ActiveTimeCharge& operator=(const ActiveTimeCharge&) = delete;

 private:
  Stopwatch watch_;
  double* acc_;
};

}  // namespace

/// All checkpointed state of one NTA query. Every former loop local of the
/// run-to-completion implementation lives here, so a Step boundary is a
/// complete checkpoint: the candidate set, the threshold inputs (MAI
/// cursors / partition bounds), the round counter, and the IQA/receipt
/// bookkeeping all survive a park and a cross-thread handoff.
struct NtaExecution::Impl {
  enum class Phase {
    kPrologue,          // most-similar: target evaluation + cursor setup
    kMaiRound,          // most-similar MAI fast-path round (§4.7.1)
    kPartitionRound,    // most-similar partition round (§4.4)
    kHighestMaiRound,   // highest phase A round: lockstep MAI descent
    kHighestPartition,  // highest phase B round: one whole partition
    kDone,
  };

  Impl(nn::InferenceEngine* inference_in, const LayerIndex* index_in,
       QueryContext* ctx_in, const NeuronGroup& group_in,
       const NtaOptions& options_in, bool is_highest)
      : inference(inference_in),
        index(index_in),
        ctx(ctx_in),
        group(group_in),
        options(options_in),
        dist(options_in.dist != nullptr ? options_in.dist : L2Distance()),
        g(group_in.neurons.size()),
        start_receipt(ctx_in->receipt),
        num_partitions(index_in->num_partitions()),
        top(options_in.k, /*smaller_is_better=*/!is_highest) {}

  // --- immutable query shape ----------------------------------------------
  nn::InferenceEngine* inference;
  const LayerIndex* index;
  QueryContext* ctx;
  NeuronGroup group;
  NtaOptions options;
  DistancePtr dist;
  size_t g;
  nn::InferenceReceipt start_receipt;
  int num_partitions;
  bool has_target_id = false;
  uint32_t target_id = 0;
  std::vector<float> target_acts;  // set at Begin, or by the prologue

  // --- checkpointed run state ---------------------------------------------
  Phase phase = Phase::kPrologue;
  Status error = Status::OK();
  RunState state;
  std::vector<uint32_t> newly;
  TopKSet top;
  int64_t rounds = 0;
  bool finished = false;  // threshold met or user early stop
  bool terminated_early = false;
  double last_threshold = 0.0;
  double active_seconds = 0.0;

  // Most-similar MAI fast path (§4.7.1).
  std::vector<MaiCursor> cursors;

  // Most-similar partition loop (§4.4), built lazily on phase entry.
  bool partitions_ready = false;
  std::vector<std::vector<uint32_t>> ord;
  std::vector<double> min_bound;
  std::vector<double> max_bound;
  std::vector<bool> seen_first;
  std::vector<bool> seen_last;
  std::vector<std::vector<uint32_t>> round_members;
  size_t partition_round = 0;
  size_t max_rounds = 0;

  // Highest cursors: phase A sorted-access position per neuron, phase B's
  // next whole partition.
  bool use_mai = false;
  uint32_t mai_count = 0;
  std::vector<size_t> mai_next;
  std::vector<int> next_partition;
  int next_pid = 0;

  // Scratch reused across rounds (capacity persists; contents per-round).
  std::vector<double> min_dists;
  std::vector<uint32_t> offer_ids;
  std::vector<float> offer_block;
  std::vector<double> offer_values;
  std::vector<uint32_t> members;

  Status Evaluate(const std::vector<uint32_t>& ids) {
    return EvaluateGroup(inference, group, ids, ctx, &state, &newly);
  }

  // Per-round candidate maintenance is a streaming pass: the round's new
  // activations are gathered into one contiguous row block and aggregated
  // with a single batched virtual call (built-ins: one dispatched
  // SIMD/scalar kernel call), instead of one virtual Aggregate per
  // candidate.
  void OfferNewlyMostSimilar() {
    offer_ids.clear();
    for (uint32_t id : newly) {
      if (has_target_id && id == target_id) continue;
      offer_ids.push_back(id);
    }
    newly.clear();
    if (offer_ids.empty()) return;
    offer_block.resize(offer_ids.size() * g);
    for (size_t r = 0; r < offer_ids.size(); ++r) {
      const std::vector<float>& acts = state.acts.at(offer_ids[r]);
      std::copy(acts.begin(), acts.end(), offer_block.begin() + r * g);
    }
    offer_values.resize(offer_ids.size());
    dist->AggregateAbsDiffMany(offer_block.data(), g, offer_ids.size(),
                               target_acts.data(), g, offer_values.data());
    for (size_t r = 0; r < offer_ids.size(); ++r) {
      top.Offer(offer_ids[r], offer_values[r]);
    }
  }

  void OfferNewlyHighest() {
    if (newly.empty()) return;
    offer_block.resize(newly.size() * g);
    for (size_t r = 0; r < newly.size(); ++r) {
      const std::vector<float>& acts = state.acts.at(newly[r]);
      std::copy(acts.begin(), acts.end(), offer_block.begin() + r * g);
    }
    offer_values.resize(newly.size());
    dist->AggregateValuesMany(offer_block.data(), g, newly.size(), g,
                              offer_values.data());
    for (size_t r = 0; r < newly.size(); ++r) {
      top.Offer(newly[r], offer_values[r]);
    }
    newly.clear();
  }

  void EmitProgress(double threshold) {
    last_threshold = threshold;
    if (finished || !ctx->on_progress) return;
    NtaProgress progress;
    progress.round = rounds;
    progress.threshold = threshold;
    progress.kth_value = top.WorstValue();
    if (top.full()) {
      progress.theta_guarantee =
          top.WorstValue() <= threshold
              ? 1.0
              : std::min(1.0, threshold / top.WorstValue());
    }
    for (const ResultEntry& e : top.entries()) {
      if (e.value <= threshold) progress.confirmed.push_back(e);
    }
    if (!ctx->on_progress(progress)) finished = true;  // user early stop
  }

  void CheckTermination(double threshold) {
    // Eq. 4 (exact) generalised by eq. 6 (θ-approximation). Tie-complete
    // mode requires a *strict* beat, so inputs tied with the k-th value are
    // all evaluated (canonical-result guarantee).
    if (!top.full()) return;
    const double bound = threshold / options.theta;
    const bool met = options.tie_complete ? top.WorstValue() < bound
                                          : top.WorstValue() <= bound;
    if (met) {
      finished = true;
      terminated_early = true;
    }
  }

  // The upper bound on any unseen input's activation for neuron gi: the
  // next unconsumed MAI entry, else the max upper bound over the remaining
  // unprocessed partitions, else 0 (all inputs seen; activations assumed
  // non-negative). Taking the max — not the first non-empty partition's
  // bound — keeps the threshold sound even if incremental merges leave the
  // remaining partitions only approximately ordered.
  double UpperOf(size_t gi) const {
    if (use_mai && mai_next[gi] < mai_count) {
      return index->MaiEntries(group.neurons[gi])[mai_next[gi]].activation;
    }
    double best = 0.0;
    bool found = false;
    for (int pid = next_partition[gi]; pid < num_partitions; ++pid) {
      const double lo =
          index->LowerBound(group.neurons[gi], static_cast<uint32_t>(pid));
      const double hi =
          index->UpperBound(group.neurons[gi], static_cast<uint32_t>(pid));
      if (lo > hi) continue;  // empty
      if (!found || hi > best) best = hi;
      found = true;
    }
    return found ? best : 0.0;
  }

  void CheckAndProgressHighest() {
    std::vector<double> uppers(g);
    for (size_t gi = 0; gi < g; ++gi) uppers[gi] = std::max(UpperOf(gi), 0.0);
    const double threshold = dist->Aggregate(uppers.data(), g);
    last_threshold = threshold;
    // Tie-complete mode requires a strict beat (see CheckTermination).
    const double bound = options.theta * threshold;
    const bool met = options.tie_complete ? top.WorstValue() > bound
                                          : top.WorstValue() >= bound;
    if (top.full() && met) {
      finished = true;
      terminated_early = true;
      return;
    }
    if (ctx->on_progress) {
      NtaProgress progress;
      progress.round = rounds;
      progress.threshold = threshold;
      progress.kth_value = top.WorstValue();
      if (top.full() && threshold > 0.0) {
        progress.theta_guarantee =
            std::min(1.0, top.WorstValue() / threshold);
      } else if (top.full()) {
        progress.theta_guarantee = 1.0;
      }
      for (const ResultEntry& e : top.entries()) {
        if (e.value >= progress.threshold) progress.confirmed.push_back(e);
      }
      if (!ctx->on_progress(progress)) finished = true;
    }
  }

  // --- step bodies: each runs one unit of work and sets the next phase ----

  Status StepPrologue() {
    DE_RETURN_NOT_OK(ctx->CheckRunnable());
    // Step 2: compute the target's activations (one inference pass when the
    // target is a dataset input).
    if (has_target_id) {
      SpanScope span(ctx->trace.get(), "nta.target");
      const int64_t inputs_before = ctx->receipt.inputs_run;
      DE_RETURN_NOT_OK(Evaluate({target_id}));
      span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
      target_acts = state.acts.at(target_id);
      newly.clear();
    }
    // MAI fast path (§4.7.1): build the similarity-ordered cursor of every
    // neuron whose MAI contains the target's activation.
    if (options.use_mai && index->has_mai()) {
      const uint32_t count = index->mai_count();
      for (size_t gi = 0; gi < g; ++gi) {
        const int64_t neuron = group.neurons[gi];
        const float lo = index->LowerBound(neuron, 0);
        const float hi = index->UpperBound(neuron, 0);
        if (lo > hi) continue;               // empty partition 0
        if (target_acts[gi] < lo) continue;  // s not in MAI(i)
        MaiCursor cursor;
        cursor.gi = gi;
        cursor.order.resize(count);
        std::iota(cursor.order.begin(), cursor.order.end(), 0u);
        const MaiEntry* entries = index->MaiEntries(neuron);
        const double s = target_acts[gi];
        std::sort(cursor.order.begin(), cursor.order.end(),
                  [&](uint32_t a, uint32_t b) {
                    const double da = std::abs(entries[a].activation - s);
                    const double db = std::abs(entries[b].activation - s);
                    if (da != db) return da < db;
                    return a < b;
                  });
        cursors.push_back(std::move(cursor));
      }
    }
    min_dists.assign(g, 0.0);
    phase = cursors.empty() ? Phase::kPartitionRound : Phase::kMaiRound;
    return Status::OK();
  }

  Status StepMaiRound() {
    // Cooperative deadline/cancellation check between rounds: an expired
    // context aborts here, within one round of the expiry — and a resumed
    // execution re-validates before doing any work.
    DE_RETURN_NOT_OK(ctx->CheckRunnable());
    SpanScope round_span(ctx->trace.get(), "nta.round");
    const int64_t inputs_before = ctx->receipt.inputs_run;
    const int64_t hits_before = state.iqa_hits;
    // Build a global toRun set by advancing every participating
    // neuron's similarity-ordered cursor in lockstep sweeps: each sweep
    // consumes the next most similar MAI entry per neuron (extending
    // that neuron's own seen range), and sweeps continue until the
    // batch of not-yet-computed inputs reaches the batch size. Checking
    // fullness only between sweeps keeps every neuron's boundary
    // current — this reproduces the paper's Figure 4 trace exactly.
    std::vector<uint32_t> batch;
    std::unordered_set<uint32_t> in_batch;
    bool any_left = true;
    while (static_cast<int>(batch.size()) < inference->batch_size() &&
           any_left) {
      any_left = false;
      for (MaiCursor& cursor : cursors) {
        if (cursor.next >= cursor.order.size()) continue;
        const MaiEntry* entries = index->MaiEntries(group.neurons[cursor.gi]);
        const uint32_t rank = cursor.order[cursor.next];
        const MaiEntry& entry = entries[rank];
        ++cursor.next;
        if (cursor.next < cursor.order.size()) any_left = true;
        cursor.min_seen =
            std::min(cursor.min_seen, static_cast<double>(entry.activation));
        cursor.max_seen =
            std::max(cursor.max_seen, static_cast<double>(entry.activation));
        if (rank == 0) cursor.seen_highest = true;
        if (state.acts.count(entry.input_id) == 0 &&
            in_batch.insert(entry.input_id).second) {
          batch.push_back(entry.input_id);
        }
      }
    }

    const bool exhausted = [&] {
      for (const MaiCursor& cursor : cursors) {
        if (cursor.next < cursor.order.size()) return false;
      }
      return true;
    }();

    DE_RETURN_NOT_OK(Evaluate(batch));
    OfferNewlyMostSimilar();
    ++rounds;

    // Threshold: neurons whose MAI does not contain s contribute 0;
    // participating neurons use min(|minB - s|, H_i * |maxB - s|).
    std::fill(min_dists.begin(), min_dists.end(), 0.0);
    for (const MaiCursor& cursor : cursors) {
      const double s = target_acts[cursor.gi];
      double md = 0.0;
      if (cursor.min_seen != kInf) {
        const double low = std::abs(cursor.min_seen - s);
        md = cursor.seen_highest
                 ? low
                 : std::min(low, std::abs(cursor.max_seen - s));
      }
      min_dists[cursor.gi] = md;
    }
    const double t = dist->Aggregate(min_dists.data(), g);
    round_span.AddInt("round", rounds);
    round_span.AddInt("candidates", static_cast<int64_t>(batch.size()));
    round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
    round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
    round_span.AddDouble("threshold", t);
    CheckTermination(t);
    EmitProgress(t);
    if (finished) {
      phase = Phase::kDone;
    } else if (exhausted) {
      phase = Phase::kPartitionRound;  // fall back to the partition loop
    }
    return Status::OK();
  }

  void InitPartitions() {
    partitions_ready = true;
    // Step 3: order each neuron's partitions by dPar (eq. 2).
    ord.assign(g, {});
    for (size_t gi = 0; gi < g; ++gi) {
      const int64_t neuron = group.neurons[gi];
      const double s = target_acts[gi];
      std::vector<std::pair<double, uint32_t>> keyed;
      keyed.reserve(static_cast<size_t>(num_partitions));
      for (int pid = 0; pid < num_partitions; ++pid) {
        const double lo =
            index->LowerBound(neuron, static_cast<uint32_t>(pid));
        const double hi =
            index->UpperBound(neuron, static_cast<uint32_t>(pid));
        if (lo > hi) continue;  // empty partition
        double d_par = 0.0;
        if (s > hi) {
          d_par = s - hi;
        } else if (s < lo) {
          d_par = lo - s;
        }
        keyed.emplace_back(d_par, static_cast<uint32_t>(pid));
      }
      std::sort(keyed.begin(), keyed.end());
      ord[gi].reserve(keyed.size());
      for (const auto& [d_par, pid] : keyed) ord[gi].push_back(pid);
    }
    min_bound.assign(g, kInf);
    max_bound.assign(g, -kInf);
    seen_first.assign(g, false);
    seen_last.assign(g, false);
    round_members.assign(g, {});
    // Neurons may have different numbers of non-empty partitions (equi-width
    // partitioning of skewed values leaves gaps); a neuron whose list is
    // exhausted simply sits out later rounds.
    max_rounds = 0;
    for (const auto& list : ord) max_rounds = std::max(max_rounds, list.size());
  }

  Status StepPartitionRound() {
    if (!partitions_ready) InitPartitions();
    if (finished || partition_round >= max_rounds) {
      phase = Phase::kDone;
      return Status::OK();
    }
    DE_RETURN_NOT_OK(ctx->CheckRunnable());
    SpanScope round_span(ctx->trace.get(), "nta.round");
    const int64_t inputs_before = ctx->receipt.inputs_run;
    const int64_t hits_before = state.iqa_hits;
    const size_t c = partition_round;
    // Step 4(a): gather this round's partitions.
    std::vector<uint32_t> to_eval;
    std::unordered_set<uint32_t> queued;
    for (size_t gi = 0; gi < g; ++gi) {
      round_members[gi].clear();
      if (c >= ord[gi].size()) continue;  // neuron exhausted
      index->GetInputIds(group.neurons[gi], ord[gi][c], &round_members[gi]);
      for (uint32_t id : round_members[gi]) {
        if (state.acts.count(id) == 0 && queued.insert(id).second) {
          to_eval.push_back(id);
        }
      }
    }
    // Step 4(b): batched inference for the union, update top.
    DE_RETURN_NOT_OK(Evaluate(to_eval));
    OfferNewlyMostSimilar();
    ++rounds;

    // Step 4(c): extend each neuron's contiguous seen range and compute
    // the threshold from the indicator-weighted boundary distances.
    for (size_t gi = 0; gi < g; ++gi) {
      if (c >= ord[gi].size()) continue;  // neuron exhausted
      for (uint32_t id : round_members[gi]) {
        const double act = state.acts.at(id)[gi];
        min_bound[gi] = std::min(min_bound[gi], act);
        max_bound[gi] = std::max(max_bound[gi], act);
      }
      if (ord[gi][c] == 0) seen_first[gi] = true;
      if (ord[gi][c] == static_cast<uint32_t>(num_partitions - 1)) {
        seen_last[gi] = true;
      }
    }
    for (size_t gi = 0; gi < g; ++gi) {
      const double s = target_acts[gi];
      const double low = seen_last[gi] ? kInf : std::abs(min_bound[gi] - s);
      const double high = seen_first[gi] ? kInf : std::abs(max_bound[gi] - s);
      min_dists[gi] = std::min(low, high);
    }
    const double t = dist->Aggregate(min_dists.data(), g);
    round_span.AddInt("round", rounds);
    round_span.AddInt("candidates", static_cast<int64_t>(to_eval.size()));
    round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
    round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
    round_span.AddDouble("threshold", t);
    CheckTermination(t);
    EmitProgress(t);
    ++partition_round;
    if (finished || partition_round >= max_rounds) phase = Phase::kDone;
    return Status::OK();
  }

  // Highest phase A: consume MAI entries globally in descending activation
  // order (classic TA parallel sorted access).
  Status StepHighestMaiRound() {
    // Between-rounds deadline/cancellation check (see StepMaiRound).
    DE_RETURN_NOT_OK(ctx->CheckRunnable());
    SpanScope round_span(ctx->trace.get(), "nta.round");
    const int64_t inputs_before = ctx->receipt.inputs_run;
    const int64_t hits_before = state.iqa_hits;
    // Lockstep sorted access: each sweep consumes the next highest MAI
    // entry of every neuron; sweeps continue until the batch of uncomputed
    // inputs is full.
    std::vector<uint32_t> batch;
    std::unordered_set<uint32_t> in_batch;
    bool any_left = true;
    while (static_cast<int>(batch.size()) < inference->batch_size() &&
           any_left) {
      any_left = false;
      for (size_t gi = 0; gi < g; ++gi) {
        if (mai_next[gi] >= mai_count) continue;
        const MaiEntry& entry =
            index->MaiEntries(group.neurons[gi])[mai_next[gi]];
        ++mai_next[gi];
        if (mai_next[gi] < mai_count) any_left = true;
        if (state.acts.count(entry.input_id) == 0 &&
            in_batch.insert(entry.input_id).second) {
          batch.push_back(entry.input_id);
        }
      }
    }
    bool exhausted = true;
    for (size_t gi = 0; gi < g; ++gi) {
      if (mai_next[gi] < mai_count) exhausted = false;
    }
    DE_RETURN_NOT_OK(Evaluate(batch));
    OfferNewlyHighest();
    ++rounds;
    CheckAndProgressHighest();
    round_span.AddInt("round", rounds);
    round_span.AddInt("candidates", static_cast<int64_t>(batch.size()));
    round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
    round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
    round_span.AddDouble("threshold", last_threshold);
    if (finished) {
      phase = Phase::kDone;
    } else if (exhausted) {
      phase = Phase::kHighestPartition;
    }
    return Status::OK();
  }

  // Highest phase B: whole partitions, highest first.
  Status StepHighestPartitionRound() {
    if (finished || next_pid >= num_partitions) {
      phase = Phase::kDone;
      return Status::OK();
    }
    DE_RETURN_NOT_OK(ctx->CheckRunnable());
    SpanScope round_span(ctx->trace.get(), "nta.round");
    const int64_t inputs_before = ctx->receipt.inputs_run;
    const int64_t hits_before = state.iqa_hits;
    const int pid = next_pid;
    std::vector<uint32_t> to_eval;
    std::unordered_set<uint32_t> queued;
    for (size_t gi = 0; gi < g; ++gi) {
      members.clear();
      index->GetInputIds(group.neurons[gi], static_cast<uint32_t>(pid),
                         &members);
      for (uint32_t id : members) {
        if (state.acts.count(id) == 0 && queued.insert(id).second) {
          to_eval.push_back(id);
        }
      }
      next_partition[gi] = pid + 1;
    }
    DE_RETURN_NOT_OK(Evaluate(to_eval));
    OfferNewlyHighest();
    ++rounds;
    CheckAndProgressHighest();
    round_span.AddInt("round", rounds);
    round_span.AddInt("candidates", static_cast<int64_t>(to_eval.size()));
    round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
    round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
    round_span.AddDouble("threshold", last_threshold);
    ++next_pid;
    if (finished || next_pid >= num_partitions) phase = Phase::kDone;
    return Status::OK();
  }
};

NtaExecution::NtaExecution(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

NtaExecution::~NtaExecution() = default;

bool NtaExecution::done() const { return impl_->phase == Impl::Phase::kDone; }

Status NtaExecution::Step() {
  Impl& im = *impl_;
  if (im.phase == Impl::Phase::kDone) return im.error;
  ActiveTimeCharge charge(&im.active_seconds);
  Status s = Status::OK();
  switch (im.phase) {
    case Impl::Phase::kPrologue:
      s = im.StepPrologue();
      break;
    case Impl::Phase::kMaiRound:
      s = im.StepMaiRound();
      break;
    case Impl::Phase::kPartitionRound:
      s = im.StepPartitionRound();
      break;
    case Impl::Phase::kHighestMaiRound:
      s = im.StepHighestMaiRound();
      break;
    case Impl::Phase::kHighestPartition:
      s = im.StepHighestPartitionRound();
      break;
    case Impl::Phase::kDone:
      break;
  }
  if (!s.ok()) {
    // A failed step finishes the execution; TakeResult() reports the error.
    im.error = s;
    im.phase = Impl::Phase::kDone;
  }
  return s;
}

Status NtaExecution::RunUntil(const std::function<bool()>& should_yield) {
  while (!done()) {
    DE_RETURN_NOT_OK(Step());
    if (!done() && should_yield && should_yield()) return Status::OK();
  }
  return Status::OK();
}

Result<TopKResult> NtaExecution::Run() {
  while (!done()) {
    const Status s = Step();
    if (!s.ok()) return s;
  }
  return TakeResult();
}

Result<TopKResult> NtaExecution::TakeResult() {
  Impl& im = *impl_;
  if (im.phase != Impl::Phase::kDone) {
    return Status::FailedPrecondition("NTA execution is not finished");
  }
  if (!im.error.ok()) return im.error;
  TopKResult result;
  result.entries = im.top.entries();
  // This query's exact inference cost: the delta of the context receipt
  // over the whole execution (a per-query context starts at zero, so
  // usually the receipt itself).
  result.stats.inputs_run =
      im.ctx->receipt.inputs_run - im.start_receipt.inputs_run;
  result.stats.batches_run =
      im.ctx->receipt.batches_run - im.start_receipt.batches_run;
  result.stats.simulated_gpu_seconds =
      im.ctx->receipt.simulated_gpu_seconds -
      im.start_receipt.simulated_gpu_seconds;
  result.stats.rounds = im.rounds;
  result.stats.iqa_hits = im.state.iqa_hits;
  result.stats.terminated_early = im.terminated_early;
  result.stats.wall_seconds = im.active_seconds;
  return result;
}

Status NtaEngine::ValidateGroup(const NeuronGroup& group) const {
  if (group.neurons.empty()) {
    return Status::InvalidArgument("neuron group is empty");
  }
  if (group.layer < 0 || group.layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(group.layer) +
                              " out of range");
  }
  const int64_t layer_neurons = inference_->model().NeuronCount(group.layer);
  if (layer_neurons != index_->num_neurons()) {
    return Status::FailedPrecondition(
        "index neuron count " + std::to_string(index_->num_neurons()) +
        " does not match layer " + std::to_string(group.layer) + " (" +
        std::to_string(layer_neurons) + " neurons)");
  }
  // The index may lag a live-growing dataset (ingest): it must cover a
  // prefix of the dataset, never more inputs than exist.
  if (index_->num_inputs() > inference_->dataset().size()) {
    return Status::FailedPrecondition("index built for a different dataset");
  }
  for (int64_t n : group.neurons) {
    if (n < 0 || n >= layer_neurons) {
      return Status::OutOfRange("neuron " + std::to_string(n) +
                                " out of range for layer " +
                                std::to_string(group.layer));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<NtaExecution>> NtaEngine::BeginMostSimilarTo(
    const NeuronGroup& group, uint32_t target_id, const NtaOptions& options,
    QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input " + std::to_string(target_id) +
                              " out of range");
  }
  DE_RETURN_NOT_OK(ValidateOptions(options));
  if (ctx == nullptr) {
    return Status::InvalidArgument(
        "a QueryContext is required to begin an execution");
  }
  std::unique_ptr<NtaExecution::Impl> impl(new NtaExecution::Impl(
      inference_, index_, ctx, group, options, /*is_highest=*/false));
  impl->has_target_id = true;
  impl->target_id = target_id;
  return std::unique_ptr<NtaExecution>(new NtaExecution(std::move(impl)));
}

Result<std::unique_ptr<NtaExecution>> NtaEngine::BeginMostSimilar(
    const NeuronGroup& group, const std::vector<float>& target_acts,
    const NtaOptions& options, QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  if (target_acts.size() != group.neurons.size()) {
    return Status::InvalidArgument("target activation count mismatch");
  }
  DE_RETURN_NOT_OK(ValidateOptions(options));
  if (ctx == nullptr) {
    return Status::InvalidArgument(
        "a QueryContext is required to begin an execution");
  }
  std::unique_ptr<NtaExecution::Impl> impl(new NtaExecution::Impl(
      inference_, index_, ctx, group, options, /*is_highest=*/false));
  impl->target_acts = target_acts;
  return std::unique_ptr<NtaExecution>(new NtaExecution(std::move(impl)));
}

Result<std::unique_ptr<NtaExecution>> NtaEngine::BeginHighest(
    const NeuronGroup& group, const NtaOptions& options, QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  DE_RETURN_NOT_OK(ValidateOptions(options));
  if (ctx == nullptr) {
    return Status::InvalidArgument(
        "a QueryContext is required to begin an execution");
  }
  std::unique_ptr<NtaExecution::Impl> impl(new NtaExecution::Impl(
      inference_, index_, ctx, group, options, /*is_highest=*/true));
  // Per-neuron sorted access position: MAI entries consumed first (exact
  // values, descending), then whole partitions.
  impl->use_mai = options.use_mai && index_->has_mai();
  impl->mai_count = index_->mai_count();
  impl->mai_next.assign(impl->g, 0);
  impl->next_partition.assign(impl->g, impl->use_mai ? 1 : 0);
  impl->next_pid = impl->use_mai ? 1 : 0;
  impl->phase = impl->use_mai ? NtaExecution::Impl::Phase::kHighestMaiRound
                              : NtaExecution::Impl::Phase::kHighestPartition;
  return std::unique_ptr<NtaExecution>(new NtaExecution(std::move(impl)));
}

Result<TopKResult> NtaEngine::MostSimilarTo(const NeuronGroup& group,
                                            uint32_t target_id,
                                            const NtaOptions& options,
                                            QueryContext* ctx) {
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_ASSIGN_OR_RETURN(std::unique_ptr<NtaExecution> execution,
                      BeginMostSimilarTo(group, target_id, options, ctx));
  return execution->Run();
}

Result<TopKResult> NtaEngine::MostSimilar(const NeuronGroup& group,
                                          const std::vector<float>& target_acts,
                                          const NtaOptions& options,
                                          QueryContext* ctx) {
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_ASSIGN_OR_RETURN(std::unique_ptr<NtaExecution> execution,
                      BeginMostSimilar(group, target_acts, options, ctx));
  return execution->Run();
}

Result<TopKResult> NtaEngine::Highest(const NeuronGroup& group,
                                      const NtaOptions& options,
                                      QueryContext* ctx) {
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_ASSIGN_OR_RETURN(std::unique_ptr<NtaExecution> execution,
                      BeginHighest(group, options, ctx));
  return execution->Run();
}

// ---------------------------------------------------------------------------
// Reference executors
// ---------------------------------------------------------------------------

namespace {

std::vector<uint32_t> AllIds(uint32_t n) {
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

/// Rows the reference executors feed the batched distance calls per block:
/// large enough to amortise the virtual + kernel dispatch, small enough to
/// stay cache-resident alongside the gather source.
constexpr size_t kScanBlockRows = 256;

/// Streams `num_inputs` rows through `row_of`/`skip` in blocks: gathers the
/// group's columns into a contiguous scratch block, runs one batched
/// `aggregate` call per block, and offers every result. The fresh-scan
/// references run through the same dispatched kernels as the service path,
/// which is what keeps the §4.6 bit-equality invariant per dispatch mode.
template <typename RowOf, typename SkipFn, typename AggregateFn>
void ScanBlocked(uint32_t num_inputs, const std::vector<int64_t>& neurons,
                 RowOf row_of, SkipFn skip, AggregateFn aggregate,
                 TopKSet* top) {
  const size_t g = neurons.size();
  std::vector<float> block(kScanBlockRows * g);
  std::vector<double> results(kScanBlockRows);
  std::vector<uint32_t> ids;
  ids.reserve(kScanBlockRows);
  uint32_t id = 0;
  while (id < num_inputs) {
    ids.clear();
    size_t r = 0;
    for (; id < num_inputs && r < kScanBlockRows; ++id) {
      if (skip(id)) continue;
      const float* row = row_of(id);
      for (size_t i = 0; i < g; ++i) {
        block[r * g + i] = row[static_cast<size_t>(neurons[i])];
      }
      ids.push_back(id);
      ++r;
    }
    aggregate(block.data(), r, results.data());
    for (size_t j = 0; j < r; ++j) top->Offer(ids[j], results[j]);
  }
}

}  // namespace

TopKResult ScanMostSimilar(const storage::LayerActivationMatrix& matrix,
                           const std::vector<int64_t>& neurons,
                           const std::vector<float>& target_acts, int k,
                           const DistancePtr& dist, bool exclude_target,
                           uint32_t target_id) {
  TopKSet top(k, /*smaller_is_better=*/true);
  const size_t g = neurons.size();
  ScanBlocked(
      matrix.num_inputs, neurons, [&](uint32_t id) { return matrix.Row(id); },
      [&](uint32_t id) { return exclude_target && id == target_id; },
      [&](const float* block, size_t rows, double* out) {
        dist->AggregateAbsDiffMany(block, g, rows, target_acts.data(), g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  return result;
}

TopKResult ScanHighest(const storage::LayerActivationMatrix& matrix,
                       const std::vector<int64_t>& neurons, int k,
                       const DistancePtr& dist) {
  TopKSet top(k, /*smaller_is_better=*/false);
  const size_t g = neurons.size();
  ScanBlocked(
      matrix.num_inputs, neurons, [&](uint32_t id) { return matrix.Row(id); },
      [](uint32_t) { return false; },
      [&](const float* block, size_t rows, double* out) {
        dist->AggregateValuesMany(block, g, rows, g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  return result;
}

Result<TopKResult> BruteForceMostSimilar(nn::InferenceEngine* inference,
                                         const NeuronGroup& group,
                                         const std::vector<float>& target_acts,
                                         int k, const DistancePtr& dist,
                                         bool exclude_target,
                                         uint32_t target_id) {
  const DistancePtr d = dist != nullptr ? dist : L2Distance();
  std::vector<std::vector<float>> rows;
  const std::vector<uint32_t> ids = AllIds(inference->dataset().size());
  nn::InferenceReceipt receipt;
  DE_RETURN_NOT_OK(inference->ComputeLayer(ids, group.layer, &rows, &receipt));
  TopKSet top(k, /*smaller_is_better=*/true);
  const size_t g = group.neurons.size();
  ScanBlocked(
      static_cast<uint32_t>(ids.size()), group.neurons,
      [&](uint32_t id) { return rows[id].data(); },
      [&](uint32_t id) { return exclude_target && id == target_id; },
      [&](const float* block, size_t num_rows, double* out) {
        d->AggregateAbsDiffMany(block, g, num_rows, target_acts.data(), g,
                                out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  return result;
}

Result<TopKResult> BruteForceHighest(nn::InferenceEngine* inference,
                                     const NeuronGroup& group, int k,
                                     const DistancePtr& dist) {
  const DistancePtr d = dist != nullptr ? dist : L2Distance();
  std::vector<std::vector<float>> rows;
  const std::vector<uint32_t> ids = AllIds(inference->dataset().size());
  nn::InferenceReceipt receipt;
  DE_RETURN_NOT_OK(inference->ComputeLayer(ids, group.layer, &rows, &receipt));
  TopKSet top(k, /*smaller_is_better=*/false);
  const size_t g = group.neurons.size();
  ScanBlocked(
      static_cast<uint32_t>(ids.size()), group.neurons,
      [&](uint32_t id) { return rows[id].data(); },
      [](uint32_t) { return false; },
      [&](const float* block, size_t num_rows, double* out) {
        d->AggregateValuesMany(block, g, num_rows, g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  return result;
}

}  // namespace core
}  // namespace deepeverest
