#include "core/nta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "nn/batch_scheduler.h"

namespace deepeverest {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Keeps the k best (input, value) pairs seen so far. For most-similar
/// queries smaller values are better; for highest queries larger are better.
class TopKSet {
 public:
  TopKSet(int k, bool smaller_is_better)
      : k_(static_cast<size_t>(k)), smaller_is_better_(smaller_is_better) {}

  void Offer(uint32_t id, double value) {
    // Total order on (value, id): ties go to the smaller input id. "Ties are
    // broken arbitrarily" in the paper, but a total order makes the kept set
    // independent of arrival order — required for the concurrent query
    // service, where IQA cache state (and hence evaluation order inside a
    // round) varies with scheduling.
    if (entries_.size() == k_ &&
        !BetterEntry(id, value, entries_.back().input_id,
                     entries_.back().value)) {
      return;
    }
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), ResultEntry{id, value},
        [this](const ResultEntry& a, const ResultEntry& b) {
          return BetterEntry(a.input_id, a.value, b.input_id, b.value);
        });
    entries_.insert(it, ResultEntry{id, value});
    if (entries_.size() > k_) entries_.pop_back();
  }

  bool full() const { return entries_.size() == k_; }
  size_t size() const { return entries_.size(); }

  /// The k-th best value; worst-possible sentinel when not yet full.
  double WorstValue() const {
    if (!full()) return smaller_is_better_ ? kInf : -kInf;
    return entries_.back().value;
  }

  const std::vector<ResultEntry>& entries() const { return entries_; }

 private:
  bool Better(double a, double b) const {
    return smaller_is_better_ ? a < b : a > b;
  }
  bool BetterEntry(uint32_t id_a, double a, uint32_t id_b, double b) const {
    if (a != b) return Better(a, b);
    return id_a < id_b;
  }

  size_t k_;
  bool smaller_is_better_;
  std::vector<ResultEntry> entries_;  // sorted best-first
};

Status ValidateOptions(const NtaOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(options.theta > 0.0) || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace

struct NtaEngine::RunState {
  /// Group activations for every input evaluated so far.
  std::unordered_map<uint32_t, std::vector<float>> acts;
  int64_t iqa_hits = 0;
};

Status NtaEngine::ValidateGroup(const NeuronGroup& group) const {
  if (group.neurons.empty()) {
    return Status::InvalidArgument("neuron group is empty");
  }
  if (group.layer < 0 || group.layer >= inference_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(group.layer) +
                              " out of range");
  }
  const int64_t layer_neurons = inference_->model().NeuronCount(group.layer);
  if (layer_neurons != index_->num_neurons()) {
    return Status::FailedPrecondition(
        "index neuron count " + std::to_string(index_->num_neurons()) +
        " does not match layer " + std::to_string(group.layer) + " (" +
        std::to_string(layer_neurons) + " neurons)");
  }
  if (index_->num_inputs() != inference_->dataset().size()) {
    return Status::FailedPrecondition("index built for a different dataset");
  }
  for (int64_t n : group.neurons) {
    if (n < 0 || n >= layer_neurons) {
      return Status::OutOfRange("neuron " + std::to_string(n) +
                                " out of range for layer " +
                                std::to_string(group.layer));
    }
  }
  return Status::OK();
}

Status NtaEngine::Evaluate(const NeuronGroup& group,
                           const std::vector<uint32_t>& ids,
                           QueryContext* ctx, RunState* state,
                           std::vector<uint32_t>* newly) {
  std::vector<uint32_t> to_infer;
  for (uint32_t id : ids) {
    if (state->acts.count(id) != 0) continue;
    if (ctx->iqa != nullptr) {
      std::vector<float> acts;
      if (ctx->iqa->Gather(group.layer, id, group.neurons, &acts)) {
        state->acts.emplace(id, std::move(acts));
        ++state->iqa_hits;
        newly->push_back(id);
        continue;
      }
    }
    to_infer.push_back(id);
  }
  if (to_infer.empty()) return Status::OK();

  std::vector<std::vector<float>> rows;
  {
    // `batches_share` is this call's fractional share of (possibly shared)
    // device batches straight from the receipt delta, so a span tree shows
    // exactly how much of a cross-query batch this query paid for. The key
    // is `inputs` (not `inputs_run`): only round-level spans carry the
    // `inputs_run` attributes that clients sum against the receipt total.
    SpanScope span(ctx->trace.get(), "compute_layer");
    const nn::InferenceReceipt before = ctx->receipt;
    if (ctx->scheduler != nullptr) {
      DE_RETURN_NOT_OK(ctx->scheduler->ComputeLayer(to_infer, group.layer,
                                                    &rows, &ctx->receipt,
                                                    ctx->qos));
    } else {
      DE_RETURN_NOT_OK(inference_->ComputeLayer(to_infer, group.layer, &rows,
                                                &ctx->receipt));
    }
    span.AddInt("inputs", static_cast<int64_t>(to_infer.size()));
    span.AddDouble("batches_share",
                   ctx->receipt.batches_run - before.batches_run);
    span.AddDouble(
        "gpu_seconds",
        ctx->receipt.simulated_gpu_seconds - before.simulated_gpu_seconds);
  }
  for (size_t r = 0; r < to_infer.size(); ++r) {
    const uint32_t id = to_infer[r];
    std::vector<float> acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      acts[i] = rows[r][static_cast<size_t>(group.neurons[i])];
    }
    state->acts.emplace(id, std::move(acts));
    newly->push_back(id);
    if (ctx->iqa != nullptr) {
      // Cache the full layer row so related queries over *other* neuron
      // groups in this layer also benefit (section 4.7.3).
      ctx->iqa->Insert(group.layer, id, std::move(rows[r]));
    }
  }
  return Status::OK();
}

Result<TopKResult> NtaEngine::MostSimilarTo(const NeuronGroup& group,
                                            uint32_t target_id,
                                            const NtaOptions& options,
                                            QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input " + std::to_string(target_id) +
                              " out of range");
  }
  return MostSimilarImpl(group, {}, options, ctx, /*has_target_id=*/true,
                         target_id);
}

Result<TopKResult> NtaEngine::MostSimilar(const NeuronGroup& group,
                                          const std::vector<float>& target_acts,
                                          const NtaOptions& options,
                                          QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  if (target_acts.size() != group.neurons.size()) {
    return Status::InvalidArgument("target activation count mismatch");
  }
  return MostSimilarImpl(group, target_acts, options, ctx,
                         /*has_target_id=*/false, 0);
}

Result<TopKResult> NtaEngine::MostSimilarImpl(
    const NeuronGroup& group, const std::vector<float>& target_acts_in,
    const NtaOptions& options, QueryContext* ctx, bool has_target_id,
    uint32_t target_id) {
  DE_RETURN_NOT_OK(ValidateOptions(options));
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_RETURN_NOT_OK(ctx->CheckRunnable());
  const nn::InferenceReceipt start_receipt = ctx->receipt;
  const DistancePtr dist = options.dist != nullptr ? options.dist : L2Distance();
  const size_t g = group.neurons.size();
  Stopwatch watch;

  RunState state;
  std::vector<uint32_t> newly;

  // Step 2: compute the target's activations (one inference pass when the
  // target is a dataset input).
  std::vector<float> target_acts = target_acts_in;
  if (has_target_id) {
    SpanScope span(ctx->trace.get(), "nta.target");
    const int64_t inputs_before = ctx->receipt.inputs_run;
    DE_RETURN_NOT_OK(Evaluate(group, {target_id}, ctx, &state, &newly));
    span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
    target_acts = state.acts.at(target_id);
    newly.clear();
  }

  TopKSet top(options.k, /*smaller_is_better=*/true);
  // Per-round candidate maintenance is a streaming pass: the round's new
  // activations are gathered into one contiguous row block and aggregated
  // with a single batched virtual call (built-ins: one dispatched SIMD/scalar
  // kernel call), instead of one virtual Aggregate per candidate.
  std::vector<uint32_t> offer_ids;
  std::vector<float> offer_block;
  std::vector<double> offer_dists;
  auto offer_newly = [&]() {
    offer_ids.clear();
    for (uint32_t id : newly) {
      if (has_target_id && id == target_id) continue;
      offer_ids.push_back(id);
    }
    newly.clear();
    if (offer_ids.empty()) return;
    offer_block.resize(offer_ids.size() * g);
    for (size_t r = 0; r < offer_ids.size(); ++r) {
      const std::vector<float>& acts = state.acts.at(offer_ids[r]);
      std::copy(acts.begin(), acts.end(), offer_block.begin() + r * g);
    }
    offer_dists.resize(offer_ids.size());
    dist->AggregateAbsDiffMany(offer_block.data(), g, offer_ids.size(),
                               target_acts.data(), g, offer_dists.data());
    for (size_t r = 0; r < offer_ids.size(); ++r) {
      top.Offer(offer_ids[r], offer_dists[r]);
    }
  };

  int64_t rounds = 0;
  bool finished = false;
  bool terminated_early = false;
  double last_threshold = 0.0;

  auto emit_progress = [&](double threshold) {
    last_threshold = threshold;
    if (finished || !ctx->on_progress) return;
    NtaProgress progress;
    progress.round = rounds;
    progress.threshold = threshold;
    progress.kth_value = top.WorstValue();
    if (top.full()) {
      progress.theta_guarantee =
          top.WorstValue() <= threshold
              ? 1.0
              : std::min(1.0, threshold / top.WorstValue());
    }
    for (const ResultEntry& e : top.entries()) {
      if (e.value <= threshold) progress.confirmed.push_back(e);
    }
    if (!ctx->on_progress(progress)) finished = true;  // user early stop
  };

  auto check_termination = [&](double threshold) {
    // Eq. 4 (exact) generalised by eq. 6 (θ-approximation). Tie-complete
    // mode requires a *strict* beat, so inputs tied with the k-th value are
    // all evaluated (canonical-result guarantee).
    if (!top.full()) return;
    const double bound = threshold / options.theta;
    const bool met = options.tie_complete ? top.WorstValue() < bound
                                          : top.WorstValue() <= bound;
    if (met) {
      finished = true;
      terminated_early = true;
    }
  };

  const int num_partitions = index_->num_partitions();

  // ------------------------- MAI fast path (§4.7.1) -----------------------
  if (!finished && options.use_mai && index_->has_mai()) {
    const uint32_t mai_count = index_->mai_count();
    struct MaiCursor {
      size_t gi = 0;                // position within the group
      std::vector<uint32_t> order;  // MAI ranks sorted by |act - s| asc
      size_t next = 0;
      bool seen_highest = false;  // H_i: consumed the rank-0 (max act) entry
      double min_seen = kInf;
      double max_seen = -kInf;
    };
    std::vector<MaiCursor> cursors;
    for (size_t gi = 0; gi < g; ++gi) {
      const int64_t neuron = group.neurons[gi];
      const float lo = index_->LowerBound(neuron, 0);
      const float hi = index_->UpperBound(neuron, 0);
      if (lo > hi) continue;            // empty partition 0
      if (target_acts[gi] < lo) continue;  // s not in MAI(i)
      MaiCursor cursor;
      cursor.gi = gi;
      cursor.order.resize(mai_count);
      std::iota(cursor.order.begin(), cursor.order.end(), 0u);
      const MaiEntry* entries = index_->MaiEntries(neuron);
      const double s = target_acts[gi];
      std::sort(cursor.order.begin(), cursor.order.end(),
                [&](uint32_t a, uint32_t b) {
                  const double da = std::abs(entries[a].activation - s);
                  const double db = std::abs(entries[b].activation - s);
                  if (da != db) return da < db;
                  return a < b;
                });
      cursors.push_back(std::move(cursor));
    }

    if (!cursors.empty()) {
      std::vector<double> min_dists(g, 0.0);
      while (!finished) {
        // Cooperative deadline/cancellation check between rounds: an
        // expired context aborts here, within one round of the expiry.
        DE_RETURN_NOT_OK(ctx->CheckRunnable());
        SpanScope round_span(ctx->trace.get(), "nta.round");
        const int64_t inputs_before = ctx->receipt.inputs_run;
        const int64_t hits_before = state.iqa_hits;
        // Build a global toRun set by advancing every participating
        // neuron's similarity-ordered cursor in lockstep sweeps: each sweep
        // consumes the next most similar MAI entry per neuron (extending
        // that neuron's own seen range), and sweeps continue until the
        // batch of not-yet-computed inputs reaches the batch size. Checking
        // fullness only between sweeps keeps every neuron's boundary
        // current — this reproduces the paper's Figure 4 trace exactly.
        std::vector<uint32_t> batch;
        std::unordered_set<uint32_t> in_batch;
        bool any_left = true;
        while (static_cast<int>(batch.size()) < inference_->batch_size() &&
               any_left) {
          any_left = false;
          for (MaiCursor& cursor : cursors) {
            if (cursor.next >= cursor.order.size()) continue;
            const MaiEntry* entries =
                index_->MaiEntries(group.neurons[cursor.gi]);
            const uint32_t rank = cursor.order[cursor.next];
            const MaiEntry& entry = entries[rank];
            ++cursor.next;
            if (cursor.next < cursor.order.size()) any_left = true;
            cursor.min_seen = std::min(cursor.min_seen,
                                       static_cast<double>(entry.activation));
            cursor.max_seen = std::max(cursor.max_seen,
                                       static_cast<double>(entry.activation));
            if (rank == 0) cursor.seen_highest = true;
            if (state.acts.count(entry.input_id) == 0 &&
                in_batch.insert(entry.input_id).second) {
              batch.push_back(entry.input_id);
            }
          }
        }

        const bool exhausted = [&] {
          for (const MaiCursor& cursor : cursors) {
            if (cursor.next < cursor.order.size()) return false;
          }
          return true;
        }();

        DE_RETURN_NOT_OK(Evaluate(group, batch, ctx, &state, &newly));
        offer_newly();
        ++rounds;

        // Threshold: neurons whose MAI does not contain s contribute 0;
        // participating neurons use min(|minB - s|, H_i * |maxB - s|).
        std::fill(min_dists.begin(), min_dists.end(), 0.0);
        for (const MaiCursor& cursor : cursors) {
          const double s = target_acts[cursor.gi];
          double md = 0.0;
          if (cursor.min_seen != kInf) {
            const double low = std::abs(cursor.min_seen - s);
            md = cursor.seen_highest
                     ? low
                     : std::min(low, std::abs(cursor.max_seen - s));
          }
          min_dists[cursor.gi] = md;
        }
        const double t = dist->Aggregate(min_dists.data(), g);
        round_span.AddInt("round", rounds);
        round_span.AddInt("candidates", static_cast<int64_t>(batch.size()));
        round_span.AddInt("inputs_run",
                          ctx->receipt.inputs_run - inputs_before);
        round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
        round_span.AddDouble("threshold", t);
        check_termination(t);
        emit_progress(t);
        if (exhausted) break;  // fall back to the partition loop
      }
    }
  }

  // ---------------------- Regular partition loop (§4.4) -------------------
  if (!finished) {
    // Step 3: order each neuron's partitions by dPar (eq. 2).
    std::vector<std::vector<uint32_t>> ord(g);
    for (size_t gi = 0; gi < g; ++gi) {
      const int64_t neuron = group.neurons[gi];
      const double s = target_acts[gi];
      std::vector<std::pair<double, uint32_t>> keyed;
      keyed.reserve(static_cast<size_t>(num_partitions));
      for (int pid = 0; pid < num_partitions; ++pid) {
        const double lo = index_->LowerBound(neuron, static_cast<uint32_t>(pid));
        const double hi = index_->UpperBound(neuron, static_cast<uint32_t>(pid));
        if (lo > hi) continue;  // empty partition
        double d_par = 0.0;
        if (s > hi) {
          d_par = s - hi;
        } else if (s < lo) {
          d_par = lo - s;
        }
        keyed.emplace_back(d_par, static_cast<uint32_t>(pid));
      }
      std::sort(keyed.begin(), keyed.end());
      ord[gi].reserve(keyed.size());
      for (const auto& [d_par, pid] : keyed) ord[gi].push_back(pid);
    }

    std::vector<double> min_bound(g, kInf), max_bound(g, -kInf);
    std::vector<bool> seen_first(g, false), seen_last(g, false);
    std::vector<double> min_dists(g, 0.0);
    std::vector<std::vector<uint32_t>> round_members(g);
    // Neurons may have different numbers of non-empty partitions (equi-width
    // partitioning of skewed values leaves gaps); a neuron whose list is
    // exhausted simply sits out later rounds.
    size_t max_rounds = 0;
    for (const auto& list : ord) max_rounds = std::max(max_rounds, list.size());

    for (size_t c = 0; c < max_rounds && !finished; ++c) {
      DE_RETURN_NOT_OK(ctx->CheckRunnable());
      SpanScope round_span(ctx->trace.get(), "nta.round");
      const int64_t inputs_before = ctx->receipt.inputs_run;
      const int64_t hits_before = state.iqa_hits;
      // Step 4(a): gather this round's partitions.
      std::vector<uint32_t> to_eval;
      std::unordered_set<uint32_t> queued;
      for (size_t gi = 0; gi < g; ++gi) {
        round_members[gi].clear();
        if (c >= ord[gi].size()) continue;  // neuron exhausted
        index_->GetInputIds(group.neurons[gi], ord[gi][c],
                            &round_members[gi]);
        for (uint32_t id : round_members[gi]) {
          if (state.acts.count(id) == 0 && queued.insert(id).second) {
            to_eval.push_back(id);
          }
        }
      }
      // Step 4(b): batched inference for the union, update top.
      DE_RETURN_NOT_OK(Evaluate(group, to_eval, ctx, &state, &newly));
      offer_newly();
      ++rounds;

      // Step 4(c): extend each neuron's contiguous seen range and compute
      // the threshold from the indicator-weighted boundary distances.
      for (size_t gi = 0; gi < g; ++gi) {
        if (c >= ord[gi].size()) continue;  // neuron exhausted
        for (uint32_t id : round_members[gi]) {
          const double act = state.acts.at(id)[gi];
          min_bound[gi] = std::min(min_bound[gi], act);
          max_bound[gi] = std::max(max_bound[gi], act);
        }
        if (ord[gi][c] == 0) seen_first[gi] = true;
        if (ord[gi][c] == static_cast<uint32_t>(num_partitions - 1)) {
          seen_last[gi] = true;
        }
      }
      for (size_t gi = 0; gi < g; ++gi) {
        const double s = target_acts[gi];
        const double low =
            seen_last[gi] ? kInf : std::abs(min_bound[gi] - s);
        const double high =
            seen_first[gi] ? kInf : std::abs(max_bound[gi] - s);
        min_dists[gi] = std::min(low, high);
      }
      const double t = dist->Aggregate(min_dists.data(), g);
      round_span.AddInt("round", rounds);
      round_span.AddInt("candidates", static_cast<int64_t>(to_eval.size()));
      round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
      round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
      round_span.AddDouble("threshold", t);
      check_termination(t);
      emit_progress(t);
    }
  }

  TopKResult result;
  result.entries = top.entries();
  // This query's exact inference cost: the delta of the context receipt
  // over this call (a per-query context starts at zero, so usually the
  // receipt itself).
  result.stats.inputs_run = ctx->receipt.inputs_run - start_receipt.inputs_run;
  result.stats.batches_run =
      ctx->receipt.batches_run - start_receipt.batches_run;
  result.stats.simulated_gpu_seconds =
      ctx->receipt.simulated_gpu_seconds - start_receipt.simulated_gpu_seconds;
  result.stats.rounds = rounds;
  result.stats.iqa_hits = state.iqa_hits;
  result.stats.terminated_early = terminated_early;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  (void)last_threshold;
  return result;
}

Result<TopKResult> NtaEngine::Highest(const NeuronGroup& group,
                                      const NtaOptions& options,
                                      QueryContext* ctx) {
  DE_RETURN_NOT_OK(ValidateGroup(group));
  DE_RETURN_NOT_OK(ValidateOptions(options));
  QueryContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  DE_RETURN_NOT_OK(ctx->CheckRunnable());
  const nn::InferenceReceipt start_receipt = ctx->receipt;
  const DistancePtr dist = options.dist != nullptr ? options.dist : L2Distance();
  const size_t g = group.neurons.size();
  Stopwatch watch;

  RunState state;
  std::vector<uint32_t> newly;
  TopKSet top(options.k, /*smaller_is_better=*/false);
  // Same streaming pass as MostSimilarImpl: one batched virtual call per
  // round over a contiguous block, not one Aggregate per candidate.
  std::vector<float> offer_block;
  std::vector<double> offer_scores;
  auto offer_newly = [&]() {
    if (newly.empty()) return;
    offer_block.resize(newly.size() * g);
    for (size_t r = 0; r < newly.size(); ++r) {
      const std::vector<float>& acts = state.acts.at(newly[r]);
      std::copy(acts.begin(), acts.end(), offer_block.begin() + r * g);
    }
    offer_scores.resize(newly.size());
    dist->AggregateValuesMany(offer_block.data(), g, newly.size(), g,
                              offer_scores.data());
    for (size_t r = 0; r < newly.size(); ++r) {
      top.Offer(newly[r], offer_scores[r]);
    }
    newly.clear();
  };

  const int num_partitions = index_->num_partitions();
  const bool use_mai = options.use_mai && index_->has_mai();
  const uint32_t mai_count = index_->mai_count();

  // Per-neuron sorted access position: MAI entries consumed first (exact
  // values, descending), then whole partitions.
  std::vector<size_t> mai_next(g, 0);
  std::vector<int> next_partition(g, use_mai ? 1 : 0);

  // The upper bound on any unseen input's activation for neuron gi: the
  // next unconsumed MAI entry, else the next unprocessed partition's upper
  // bound, else 0 (all inputs seen; activations assumed non-negative).
  auto upper_of = [&](size_t gi) -> double {
    if (use_mai && mai_next[gi] < mai_count) {
      return index_->MaiEntries(group.neurons[gi])[mai_next[gi]].activation;
    }
    for (int pid = next_partition[gi]; pid < num_partitions; ++pid) {
      const double lo =
          index_->LowerBound(group.neurons[gi], static_cast<uint32_t>(pid));
      const double hi =
          index_->UpperBound(group.neurons[gi], static_cast<uint32_t>(pid));
      if (lo > hi) continue;  // empty
      return hi;
    }
    return 0.0;
  };

  int64_t rounds = 0;
  bool finished = false;
  bool terminated_early = false;
  double last_threshold = 0.0;

  auto check_and_progress = [&]() {
    std::vector<double> uppers(g);
    for (size_t gi = 0; gi < g; ++gi) uppers[gi] = std::max(upper_of(gi), 0.0);
    const double threshold = dist->Aggregate(uppers.data(), g);
    last_threshold = threshold;
    // Tie-complete mode requires a strict beat (see MostSimilarImpl).
    const double bound = options.theta * threshold;
    const bool met = options.tie_complete ? top.WorstValue() > bound
                                          : top.WorstValue() >= bound;
    if (top.full() && met) {
      finished = true;
      terminated_early = true;
      return;
    }
    if (ctx->on_progress) {
      NtaProgress progress;
      progress.round = rounds;
      progress.threshold = threshold;
      progress.kth_value = top.WorstValue();
      if (top.full() && threshold > 0.0) {
        progress.theta_guarantee =
            std::min(1.0, top.WorstValue() / threshold);
      } else if (top.full()) {
        progress.theta_guarantee = 1.0;
      }
      for (const ResultEntry& e : top.entries()) {
        if (e.value >= progress.threshold) progress.confirmed.push_back(e);
      }
      if (!ctx->on_progress(progress)) finished = true;
    }
  };

  // Phase A: consume MAI entries globally in descending activation order.
  if (use_mai && !finished) {
    while (!finished) {
      // Between-rounds deadline/cancellation check (see MostSimilarImpl).
      DE_RETURN_NOT_OK(ctx->CheckRunnable());
      SpanScope round_span(ctx->trace.get(), "nta.round");
      const int64_t inputs_before = ctx->receipt.inputs_run;
      const int64_t hits_before = state.iqa_hits;
      // Lockstep sorted access: each sweep consumes the next highest MAI
      // entry of every neuron (classic TA parallel sorted access); sweeps
      // continue until the batch of uncomputed inputs is full.
      std::vector<uint32_t> batch;
      std::unordered_set<uint32_t> in_batch;
      bool any_left = true;
      while (static_cast<int>(batch.size()) < inference_->batch_size() &&
             any_left) {
        any_left = false;
        for (size_t gi = 0; gi < g; ++gi) {
          if (mai_next[gi] >= mai_count) continue;
          const MaiEntry& entry =
              index_->MaiEntries(group.neurons[gi])[mai_next[gi]];
          ++mai_next[gi];
          if (mai_next[gi] < mai_count) any_left = true;
          if (state.acts.count(entry.input_id) == 0 &&
              in_batch.insert(entry.input_id).second) {
            batch.push_back(entry.input_id);
          }
        }
      }
      bool exhausted = true;
      for (size_t gi = 0; gi < g; ++gi) {
        if (mai_next[gi] < mai_count) exhausted = false;
      }
      DE_RETURN_NOT_OK(Evaluate(group, batch, ctx, &state, &newly));
      offer_newly();
      ++rounds;
      check_and_progress();
      round_span.AddInt("round", rounds);
      round_span.AddInt("candidates", static_cast<int64_t>(batch.size()));
      round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
      round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
      round_span.AddDouble("threshold", last_threshold);
      if (exhausted) break;
    }
  }

  // Phase B: whole partitions, highest first.
  if (!finished) {
    std::vector<uint32_t> members;
    for (int pid = use_mai ? 1 : 0; pid < num_partitions && !finished;
         ++pid) {
      DE_RETURN_NOT_OK(ctx->CheckRunnable());
      SpanScope round_span(ctx->trace.get(), "nta.round");
      const int64_t inputs_before = ctx->receipt.inputs_run;
      const int64_t hits_before = state.iqa_hits;
      std::vector<uint32_t> to_eval;
      std::unordered_set<uint32_t> queued;
      for (size_t gi = 0; gi < g; ++gi) {
        members.clear();
        index_->GetInputIds(group.neurons[gi], static_cast<uint32_t>(pid),
                            &members);
        for (uint32_t id : members) {
          if (state.acts.count(id) == 0 && queued.insert(id).second) {
            to_eval.push_back(id);
          }
        }
        next_partition[gi] = pid + 1;
      }
      DE_RETURN_NOT_OK(Evaluate(group, to_eval, ctx, &state, &newly));
      offer_newly();
      ++rounds;
      check_and_progress();
      round_span.AddInt("round", rounds);
      round_span.AddInt("candidates", static_cast<int64_t>(to_eval.size()));
      round_span.AddInt("inputs_run", ctx->receipt.inputs_run - inputs_before);
      round_span.AddInt("iqa_hits", state.iqa_hits - hits_before);
      round_span.AddDouble("threshold", last_threshold);
    }
  }

  TopKResult result;
  result.entries = top.entries();
  result.stats.inputs_run = ctx->receipt.inputs_run - start_receipt.inputs_run;
  result.stats.batches_run =
      ctx->receipt.batches_run - start_receipt.batches_run;
  result.stats.simulated_gpu_seconds =
      ctx->receipt.simulated_gpu_seconds - start_receipt.simulated_gpu_seconds;
  result.stats.rounds = rounds;
  result.stats.iqa_hits = state.iqa_hits;
  result.stats.terminated_early = terminated_early;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// Reference executors
// ---------------------------------------------------------------------------

namespace {

std::vector<uint32_t> AllIds(uint32_t n) {
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

/// Rows the reference executors feed the batched distance calls per block:
/// large enough to amortise the virtual + kernel dispatch, small enough to
/// stay cache-resident alongside the gather source.
constexpr size_t kScanBlockRows = 256;

/// Streams `num_inputs` rows through `row_of`/`skip` in blocks: gathers the
/// group's columns into a contiguous scratch block, runs one batched
/// `aggregate` call per block, and offers every result. The fresh-scan
/// references run through the same dispatched kernels as the service path,
/// which is what keeps the §4.6 bit-equality invariant per dispatch mode.
template <typename RowOf, typename SkipFn, typename AggregateFn>
void ScanBlocked(uint32_t num_inputs, const std::vector<int64_t>& neurons,
                 RowOf row_of, SkipFn skip, AggregateFn aggregate,
                 TopKSet* top) {
  const size_t g = neurons.size();
  std::vector<float> block(kScanBlockRows * g);
  std::vector<double> results(kScanBlockRows);
  std::vector<uint32_t> ids;
  ids.reserve(kScanBlockRows);
  uint32_t id = 0;
  while (id < num_inputs) {
    ids.clear();
    size_t r = 0;
    for (; id < num_inputs && r < kScanBlockRows; ++id) {
      if (skip(id)) continue;
      const float* row = row_of(id);
      for (size_t i = 0; i < g; ++i) {
        block[r * g + i] = row[static_cast<size_t>(neurons[i])];
      }
      ids.push_back(id);
      ++r;
    }
    aggregate(block.data(), r, results.data());
    for (size_t j = 0; j < r; ++j) top->Offer(ids[j], results[j]);
  }
}

}  // namespace

TopKResult ScanMostSimilar(const storage::LayerActivationMatrix& matrix,
                           const std::vector<int64_t>& neurons,
                           const std::vector<float>& target_acts, int k,
                           const DistancePtr& dist, bool exclude_target,
                           uint32_t target_id) {
  TopKSet top(k, /*smaller_is_better=*/true);
  const size_t g = neurons.size();
  ScanBlocked(
      matrix.num_inputs, neurons, [&](uint32_t id) { return matrix.Row(id); },
      [&](uint32_t id) { return exclude_target && id == target_id; },
      [&](const float* block, size_t rows, double* out) {
        dist->AggregateAbsDiffMany(block, g, rows, target_acts.data(), g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  return result;
}

TopKResult ScanHighest(const storage::LayerActivationMatrix& matrix,
                       const std::vector<int64_t>& neurons, int k,
                       const DistancePtr& dist) {
  TopKSet top(k, /*smaller_is_better=*/false);
  const size_t g = neurons.size();
  ScanBlocked(
      matrix.num_inputs, neurons, [&](uint32_t id) { return matrix.Row(id); },
      [](uint32_t) { return false; },
      [&](const float* block, size_t rows, double* out) {
        dist->AggregateValuesMany(block, g, rows, g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  return result;
}

Result<TopKResult> BruteForceMostSimilar(nn::InferenceEngine* inference,
                                         const NeuronGroup& group,
                                         const std::vector<float>& target_acts,
                                         int k, const DistancePtr& dist,
                                         bool exclude_target,
                                         uint32_t target_id) {
  const DistancePtr d = dist != nullptr ? dist : L2Distance();
  std::vector<std::vector<float>> rows;
  const std::vector<uint32_t> ids = AllIds(inference->dataset().size());
  nn::InferenceReceipt receipt;
  DE_RETURN_NOT_OK(inference->ComputeLayer(ids, group.layer, &rows, &receipt));
  TopKSet top(k, /*smaller_is_better=*/true);
  const size_t g = group.neurons.size();
  ScanBlocked(
      static_cast<uint32_t>(ids.size()), group.neurons,
      [&](uint32_t id) { return rows[id].data(); },
      [&](uint32_t id) { return exclude_target && id == target_id; },
      [&](const float* block, size_t num_rows, double* out) {
        d->AggregateAbsDiffMany(block, g, num_rows, target_acts.data(), g,
                                out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  return result;
}

Result<TopKResult> BruteForceHighest(nn::InferenceEngine* inference,
                                     const NeuronGroup& group, int k,
                                     const DistancePtr& dist) {
  const DistancePtr d = dist != nullptr ? dist : L2Distance();
  std::vector<std::vector<float>> rows;
  const std::vector<uint32_t> ids = AllIds(inference->dataset().size());
  nn::InferenceReceipt receipt;
  DE_RETURN_NOT_OK(inference->ComputeLayer(ids, group.layer, &rows, &receipt));
  TopKSet top(k, /*smaller_is_better=*/false);
  const size_t g = group.neurons.size();
  ScanBlocked(
      static_cast<uint32_t>(ids.size()), group.neurons,
      [&](uint32_t id) { return rows[id].data(); },
      [](uint32_t) { return false; },
      [&](const float* block, size_t num_rows, double* out) {
        d->AggregateValuesMany(block, g, num_rows, g, out);
      },
      &top);
  TopKResult result;
  result.entries = top.entries();
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  return result;
}

}  // namespace core
}  // namespace deepeverest
