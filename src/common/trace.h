#ifndef DEEPEVEREST_COMMON_TRACE_H_
#define DEEPEVEREST_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace deepeverest {

/// \brief One typed span attribute. Integer attributes stay integers end to
/// end (they are summed exactly by clients — e.g. per-round `inputs_run`
/// must add up to the query's receipt total bit-for-bit); doubles carry
/// thresholds, batch shares, and seconds.
struct TraceAttr {
  std::string key;
  bool is_int = true;
  int64_t int_value = 0;
  double double_value = 0.0;
};

/// \brief One timed interval inside a trace. Times are nanoseconds on the
/// trace's own monotonic clock (zero = trace creation), so spans need no
/// wall-clock and serialize compactly.
struct TraceSpan {
  std::string name;
  /// Index of the enclosing span in Trace::Snapshot().spans; -1 = root.
  int parent = -1;
  int64_t start_nanos = 0;
  /// -1 while the span is still open (Snapshot reports a provisional
  /// duration up to "now" for open spans and flags them).
  int64_t duration_nanos = -1;
  std::vector<TraceAttr> attrs;
};

/// \brief A lock-cheap per-query trace: a bounded span vector on one
/// monotonic clock.
///
/// Every service query gets one at admission; it rides the query's
/// QueryContext through QueryService → DeepEverest → NtaEngine →
/// BatchingInferenceScheduler, so each layer appends spans without any
/// signature churn. Span nesting is implicit: StartSpan parents to the
/// innermost span still open, which matches the strictly LIFO way the
/// execution layers open and close their scopes (admission opens
/// query/queue_wait, the worker closes queue_wait and opens execute, NTA
/// nests rounds and ComputeLayer calls inside execute, the HTTP layer adds
/// serialize at the end).
///
/// Thread-safety: all methods are safe from any thread (one small mutex —
/// uncontended in practice, since at most one thread works on a query at a
/// time and handoffs are already synchronised by the service). The span
/// vector is bounded: once `max_spans` spans exist, further StartSpan calls
/// are dropped (counted in Snapshot().dropped_spans) instead of growing
/// without bound on adversarial queries.
class Trace {
 public:
  static constexpr size_t kDefaultMaxSpans = 256;

  /// Process-wide unique trace id (a simple atomic counter: ids are for
  /// correlating /v1/trace lookups and slow-query log lines, not security).
  static uint64_t NextId();

  explicit Trace(uint64_t id, size_t max_spans = kDefaultMaxSpans);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  uint64_t id() const { return id_; }

  /// Opens a span parented to the innermost open span. Returns the span's
  /// index, or -1 when the trace is full (the drop is counted, and every
  /// later call on index -1 is a safe no-op).
  int StartSpan(const char* name);
  /// Closes `span`. No-op for -1 or an already-closed span.
  void EndSpan(int span);

  void AddInt(int span, const char* key, int64_t value);
  void AddDouble(int span, const char* key, double value);

  /// Closes every span still open (innermost first). Idempotent; called by
  /// the layer that owns the end of the query's life (the HTTP front-end
  /// after response serialization).
  void Finish();

  /// Nanoseconds since the trace was created.
  int64_t ElapsedNanos() const;

  struct Data {
    uint64_t id = 0;
    int64_t dropped_spans = 0;
    /// True when some span was still open at snapshot time (its duration is
    /// provisional).
    bool has_open_spans = false;
    std::vector<TraceSpan> spans;
  };
  /// A consistent copy of the trace; open spans get a provisional duration
  /// up to "now".
  Data Snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  const uint64_t id_;
  const size_t max_spans_;
  const Clock::time_point t0_;

  mutable common::Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  /// Stack of open span indices.
  std::vector<int> open_ GUARDED_BY(mu_);
  int64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// \brief RAII span: opens on construction, closes on destruction. Null
/// trace (engine-direct callers without tracing) makes every operation a
/// no-op, so instrumentation sites need no branching of their own.
class SpanScope {
 public:
  SpanScope(Trace* trace, const char* name)
      : trace_(trace), span_(trace != nullptr ? trace->StartSpan(name) : -1) {}
  ~SpanScope() {
    if (trace_ != nullptr) trace_->EndSpan(span_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void AddInt(const char* key, int64_t value) {
    if (trace_ != nullptr) trace_->AddInt(span_, key, value);
  }
  void AddDouble(const char* key, double value) {
    if (trace_ != nullptr) trace_->AddDouble(span_, key, value);
  }
  int index() const { return span_; }

 private:
  Trace* trace_;
  int span_;
};

/// \brief Fixed-size ring of recently finished traces, the backing store of
/// `GET /v1/trace/<id>`: the newest `capacity` traces survive, older ones
/// are dropped as the ring wraps. Thread-safe. Capacity 0 keeps nothing.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(std::shared_ptr<Trace> trace);
  /// The trace with `id` if it is still in the ring; nullptr otherwise.
  std::shared_ptr<Trace> Find(uint64_t id) const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable common::Mutex mu_;
  std::vector<std::shared_ptr<Trace>> ring_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_TRACE_H_
