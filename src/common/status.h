#ifndef DEEPEVEREST_COMMON_STATUS_H_
#define DEEPEVEREST_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace deepeverest {

/// \brief Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
};

/// \brief Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style operation outcome.
///
/// Library code returns Status (or Result<T>) instead of throwing. A Status is
/// cheap to copy when OK (no allocation) and carries a code plus message
/// otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace deepeverest

/// Propagates a non-OK Status to the caller.
#define DE_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::deepeverest::Status _st = (expr);           \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // DEEPEVEREST_COMMON_STATUS_H_
