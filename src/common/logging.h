#ifndef DEEPEVEREST_COMMON_LOGGING_H_
#define DEEPEVEREST_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace deepeverest {
namespace internal_logging {

enum class LogLevel { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Receives every emitted log line: the level, the source location, and the
/// formatted message (no prefix, no trailing newline). Installed sinks run
/// under an internal mutex, so a sink may append to a plain container.
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const std::string& message)>;

/// Minimum level actually emitted. Initialised once from the
/// `DEEPEVEREST_LOG_LEVEL` environment variable (accepts `info`, `warning`
/// (or `warn`), `error`, `fatal`, or a digit 0–3; default info). kFatal is
/// never filtered — the process is about to abort and must say why.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Installs `sink` in place of the default stderr writer (tests use this to
/// capture lines, e.g. the structured slow-query log). Pass nullptr to
/// restore the default.
void SetLogSink(LogSink sink);

/// True when a message at `level` would be emitted; lets the DE_LOG_ macros
/// skip message formatting entirely for filtered levels.
bool LogEnabled(LogLevel level);

/// Dispatches one formatted line to the active sink. Aborts after
/// dispatching a kFatal message.
void EmitLogMessage(LogLevel level, const char* file, int line,
                    const std::string& message);

/// \brief Stream-style log builder; dispatches one line to the active sink
/// on destruction and aborts the process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() { EmitLogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a log statement that was compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace deepeverest

/// The `if (!enabled) ; else` shape skips the LogMessage (and all the <<
/// formatting on the right-hand side) when the level is filtered, while
/// staying safe inside an unbraced if/else.
#define DE_LOG_AT_LEVEL(level)                                      \
  if (!::deepeverest::internal_logging::LogEnabled(level))          \
    ;                                                               \
  else                                                              \
    ::deepeverest::internal_logging::LogMessage(level, __FILE__, __LINE__)

#define DE_LOG_INFO \
  DE_LOG_AT_LEVEL(::deepeverest::internal_logging::LogLevel::kInfo)
#define DE_LOG_WARNING \
  DE_LOG_AT_LEVEL(::deepeverest::internal_logging::LogLevel::kWarning)
#define DE_LOG_ERROR \
  DE_LOG_AT_LEVEL(::deepeverest::internal_logging::LogLevel::kError)
#define DE_LOG_FATAL                                   \
  ::deepeverest::internal_logging::LogMessage(         \
      ::deepeverest::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define DE_CHECK(cond) \
  if (cond)            \
    ;                  \
  else                 \
    DE_LOG_FATAL << "Check failed: " #cond " "

#define DE_CHECK_EQ(a, b) DE_CHECK((a) == (b))
#define DE_CHECK_NE(a, b) DE_CHECK((a) != (b))
#define DE_CHECK_LT(a, b) DE_CHECK((a) < (b))
#define DE_CHECK_LE(a, b) DE_CHECK((a) <= (b))
#define DE_CHECK_GT(a, b) DE_CHECK((a) > (b))
#define DE_CHECK_GE(a, b) DE_CHECK((a) >= (b))

#endif  // DEEPEVEREST_COMMON_LOGGING_H_
