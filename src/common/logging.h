#ifndef DEEPEVEREST_COMMON_LOGGING_H_
#define DEEPEVEREST_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace deepeverest {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// \brief Stream-style log sink; writes one line to stderr on destruction and
/// aborts the process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (level_ == LogLevel::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement that was compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace deepeverest

#define DE_LOG_INFO                                    \
  ::deepeverest::internal_logging::LogMessage(         \
      ::deepeverest::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)
#define DE_LOG_WARNING                                 \
  ::deepeverest::internal_logging::LogMessage(         \
      ::deepeverest::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)
#define DE_LOG_ERROR                                   \
  ::deepeverest::internal_logging::LogMessage(         \
      ::deepeverest::internal_logging::LogLevel::kError, __FILE__, __LINE__)
#define DE_LOG_FATAL                                   \
  ::deepeverest::internal_logging::LogMessage(         \
      ::deepeverest::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define DE_CHECK(cond) \
  if (cond)            \
    ;                  \
  else                 \
    DE_LOG_FATAL << "Check failed: " #cond " "

#define DE_CHECK_EQ(a, b) DE_CHECK((a) == (b))
#define DE_CHECK_NE(a, b) DE_CHECK((a) != (b))
#define DE_CHECK_LT(a, b) DE_CHECK((a) < (b))
#define DE_CHECK_LE(a, b) DE_CHECK((a) <= (b))
#define DE_CHECK_GT(a, b) DE_CHECK((a) > (b))
#define DE_CHECK_GE(a, b) DE_CHECK((a) >= (b))

#endif  // DEEPEVEREST_COMMON_LOGGING_H_
