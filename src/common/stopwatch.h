#ifndef DEEPEVEREST_COMMON_STOPWATCH_H_
#define DEEPEVEREST_COMMON_STOPWATCH_H_

#include <chrono>

namespace deepeverest {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_STOPWATCH_H_
