#include "common/rng.h"

#include <unordered_set>

#include "common/logging.h"

namespace deepeverest {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t population,
                                                  size_t count) {
  DE_CHECK_LE(count, population);
  if (count * 3 >= population) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<size_t> all(population);
    for (size_t i = 0; i < population; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(count);
    return all;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const size_t v = NextUint64(population);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace deepeverest
