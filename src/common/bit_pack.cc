#include "common/bit_pack.h"

#include "kernels/kernels.h"

namespace deepeverest {

void PackedIntArray::GetMany(size_t begin, size_t count, uint64_t* out) const {
  if (count == 0) return;
  DE_CHECK_LE(begin, size_);
  DE_CHECK_LE(count, size_ - begin);
  kernels::Active().unpack(words_.data(), words_.size(), bits_per_value_,
                           begin, count, out);
}

}  // namespace deepeverest
