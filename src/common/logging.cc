#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/mutex.h"

namespace deepeverest {
namespace internal_logging {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("DEEPEVEREST_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  std::string value;
  for (const char* p = env; *p != '\0'; ++p) {
    value.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "info" || value == "0") return LogLevel::kInfo;
  if (value == "warning" || value == "warn" || value == "1") {
    return LogLevel::kWarning;
  }
  if (value == "error" || value == "2") return LogLevel::kError;
  if (value == "fatal" || value == "3") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

std::atomic<int>& MinLevelStorage() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

common::Mutex& SinkMutex() {
  static common::Mutex mu;
  return mu;
}

LogSink& SinkStorage() REQUIRES(SinkMutex()) {
  static LogSink sink;  // empty = default stderr writer
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelStorage().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  common::MutexLock lock(&SinkMutex());
  SinkStorage() = std::move(sink);
}

bool LogEnabled(LogLevel level) {
  // Fatal always fires: the process is about to abort and must say why.
  if (level == LogLevel::kFatal) return true;
  return static_cast<int>(level) >=
         MinLevelStorage().load(std::memory_order_relaxed);
}

void EmitLogMessage(LogLevel level, const char* file, int line,
                    const std::string& message) {
  if (LogEnabled(level)) {
    common::MutexLock lock(&SinkMutex());
    const LogSink& sink = SinkStorage();
    if (sink) {
      sink(level, file, line, message);
    } else {
      std::cerr << "[" << LevelName(level) << " " << Basename(file) << ":"
                << line << "] " << message << "\n";
    }
  }
  if (level == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace deepeverest
