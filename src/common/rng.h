#ifndef DEEPEVEREST_COMMON_RNG_H_
#define DEEPEVEREST_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace deepeverest {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Every source of randomness in the repository (model weights, synthetic
/// datasets, query generators, workloads) flows through an explicitly seeded
/// Rng so all experiments and tests are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased by < 2^-64,
    // irrelevant for our use).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextUint64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = NextUint64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct values from [0, population) without
  /// replacement. `count` must be <= population.
  std::vector<size_t> SampleWithoutReplacement(size_t population,
                                               size_t count);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_RNG_H_
