#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace deepeverest {

uint64_t Trace::NextId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Trace::Trace(uint64_t id, size_t max_spans)
    : id_(id), max_spans_(max_spans), t0_(Clock::now()) {}

int64_t Trace::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0_)
      .count();
}

int Trace::StartSpan(const char* name) {
  const int64_t now = ElapsedNanos();
  common::MutexLock lock(&mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  TraceSpan span;
  span.name = name;
  span.parent = open_.empty() ? -1 : open_.back();
  span.start_nanos = now;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void Trace::EndSpan(int span) {
  if (span < 0) return;
  const int64_t now = ElapsedNanos();
  common::MutexLock lock(&mu_);
  if (static_cast<size_t>(span) >= spans_.size()) return;
  TraceSpan& s = spans_[static_cast<size_t>(span)];
  if (s.duration_nanos >= 0) return;  // already closed
  s.duration_nanos = now - s.start_nanos;
  // Normally the top of the open stack; tolerate out-of-order closes (a
  // dropped child can leave a gap) by erasing wherever it is.
  const auto it = std::find(open_.rbegin(), open_.rend(), span);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

void Trace::AddInt(int span, const char* key, int64_t value) {
  if (span < 0) return;
  common::MutexLock lock(&mu_);
  if (static_cast<size_t>(span) >= spans_.size()) return;
  TraceAttr attr;
  attr.key = key;
  attr.is_int = true;
  attr.int_value = value;
  spans_[static_cast<size_t>(span)].attrs.push_back(std::move(attr));
}

void Trace::AddDouble(int span, const char* key, double value) {
  if (span < 0) return;
  common::MutexLock lock(&mu_);
  if (static_cast<size_t>(span) >= spans_.size()) return;
  TraceAttr attr;
  attr.key = key;
  attr.is_int = false;
  attr.double_value = value;
  spans_[static_cast<size_t>(span)].attrs.push_back(std::move(attr));
}

void Trace::Finish() {
  const int64_t now = ElapsedNanos();
  common::MutexLock lock(&mu_);
  // Innermost first, so parents never close before their children.
  while (!open_.empty()) {
    const int span = open_.back();
    open_.pop_back();
    TraceSpan& s = spans_[static_cast<size_t>(span)];
    if (s.duration_nanos < 0) s.duration_nanos = now - s.start_nanos;
  }
}

Trace::Data Trace::Snapshot() const {
  const int64_t now = ElapsedNanos();
  common::MutexLock lock(&mu_);
  Data data;
  data.id = id_;
  data.dropped_spans = dropped_;
  data.has_open_spans = !open_.empty();
  data.spans = spans_;
  for (TraceSpan& span : data.spans) {
    if (span.duration_nanos < 0) span.duration_nanos = now - span.start_nanos;
  }
  return data;
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity);
}

void TraceRing::Push(std::shared_ptr<Trace> trace) {
  if (capacity_ == 0 || trace == nullptr) return;
  common::MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % capacity_;
}

std::shared_ptr<Trace> TraceRing::Find(uint64_t id) const {
  common::MutexLock lock(&mu_);
  for (const std::shared_ptr<Trace>& trace : ring_) {
    if (trace != nullptr && trace->id() == id) return trace;
  }
  return nullptr;
}

}  // namespace deepeverest
