#include "common/serde.h"

namespace deepeverest {

Status BinaryReader::ReadLength(uint64_t* len, size_t element_size) {
  DE_RETURN_NOT_OK(ReadU64(len));
  if (element_size > 0 && *len > remaining() / element_size) {
    return Status::IOError("corrupt length prefix: " + std::to_string(*len) +
                           " elements exceed remaining buffer");
  }
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  uint64_t len = 0;
  DE_RETURN_NOT_OK(ReadLength(&len, 1));
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadF32Vector(std::vector<float>* out) {
  uint64_t len = 0;
  DE_RETURN_NOT_OK(ReadLength(&len, sizeof(float)));
  out->resize(len);
  return Fixed(out->data(), len * sizeof(float));
}

Status BinaryReader::ReadU32Vector(std::vector<uint32_t>* out) {
  uint64_t len = 0;
  DE_RETURN_NOT_OK(ReadLength(&len, sizeof(uint32_t)));
  out->resize(len);
  return Fixed(out->data(), len * sizeof(uint32_t));
}

Status BinaryReader::ReadU64Vector(std::vector<uint64_t>* out) {
  uint64_t len = 0;
  DE_RETURN_NOT_OK(ReadLength(&len, sizeof(uint64_t)));
  out->resize(len);
  return Fixed(out->data(), len * sizeof(uint64_t));
}

}  // namespace deepeverest
