#include "common/build_info.h"

// DE_BUILD_* come in as per-source compile definitions from CMakeLists.txt;
// every macro has an "unknown" fallback so the file also compiles stand-alone.
#ifndef DE_BUILD_CXX_FLAGS
#define DE_BUILD_CXX_FLAGS "unknown"
#endif
#ifndef DE_BUILD_TYPE
#define DE_BUILD_TYPE "unknown"
#endif
#ifndef DE_BUILD_GIT_DESCRIBE
#define DE_BUILD_GIT_DESCRIBE "unknown"
#endif

#define DE_STRINGIFY_INNER(x) #x
#define DE_STRINGIFY(x) DE_STRINGIFY_INNER(x)

namespace deepeverest {
namespace {

const char* CompilerString() {
#if defined(__clang__)
  return "clang " DE_STRINGIFY(__clang_major__) "." DE_STRINGIFY(
      __clang_minor__) "." DE_STRINGIFY(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " DE_STRINGIFY(__GNUC__) "." DE_STRINGIFY(
      __GNUC_MINOR__) "." DE_STRINGIFY(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {CompilerString(), DE_BUILD_CXX_FLAGS,
                                 DE_BUILD_TYPE, DE_BUILD_GIT_DESCRIBE};
  return info;
}

}  // namespace deepeverest
