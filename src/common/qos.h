#ifndef DEEPEVEREST_COMMON_QOS_H_
#define DEEPEVEREST_COMMON_QOS_H_

namespace deepeverest {

/// \brief Quality-of-service class of one query (inherited from its
/// session).
///
/// Classes are strict priorities at every layer that makes a scheduling
/// decision — admission dispatch in the QueryService and device batch
/// formation in the BatchingInferenceScheduler: interactive beats batch
/// beats best-effort. The numeric value IS the priority (lower = more
/// urgent) and doubles as the index into per-class stat arrays.
enum class QosClass : int {
  /// A human in the loop: dispatched before everything else, and its
  /// inference never waits out a batch linger window (partial batches it
  /// joins are sealed and launched immediately).
  kInteractive = 0,
  /// The default: bulk interpretation work that prefers throughput — its
  /// inference lingers for fuller device batches.
  kBatch = 1,
  /// Background sweeps / re-indexing: runs only when nothing else is
  /// queued, and lingers longest for maximally full batches.
  kBestEffort = 2,
};

inline constexpr int kNumQosClasses = 3;

/// Stat-array index of `qos` (identical to its priority value).
inline constexpr int QosIndex(QosClass qos) { return static_cast<int>(qos); }

inline const char* QosClassName(QosClass qos) {
  switch (qos) {
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kBatch:
      return "batch";
    case QosClass::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_QOS_H_
