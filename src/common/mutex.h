#ifndef DEEPEVEREST_COMMON_MUTEX_H_
#define DEEPEVEREST_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace deepeverest {
namespace common {

/// \brief std::mutex with Clang Thread Safety Analysis annotations.
///
/// Every mutex in src/ is one of these (or a SharedMutex): the raw std
/// types carry no annotations, so the analysis cannot check code that uses
/// them. Fields protected by a Mutex declare it with GUARDED_BY(mu_);
/// helpers that expect it held declare REQUIRES(mu_). Prefer MutexLock for
/// scoped acquisition; call Lock/Unlock directly only where a scope cannot
/// express the protocol (e.g. releasing around a blocking call).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief std::shared_mutex with annotations: exclusive writers, shared
/// readers (the IndexManager's build-once/read-many pattern).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock on a Mutex (the std::lock_guard
/// replacement the analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable over a common::Mutex.
///
/// Wait atomically releases the mutex and reacquires it before returning,
/// exactly like std::condition_variable — the REQUIRES(mu) annotation
/// matches how the analysis models a wait (held on entry, held on exit).
///
/// Predicate waits that read GUARDED_BY fields should be written as
/// explicit loops at the call site (`while (!cond) cv.Wait(&mu);`): a
/// predicate lambda is analyzed as a separate function that does not hold
/// the mutex, so guarded reads inside it would (falsely) trip the analysis.
/// The template overloads below are for predicates over unguarded state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Returns false when the wait timed out without a notification.
  template <class Rep, class Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Returns false when `deadline` passed without a notification.
  template <class ClockT, class Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<ClockT, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Predicate wait (unguarded predicates only — see the class comment).
  template <class Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Predicate wait with a timeout; returns pred()'s value on exit.
  template <class Rep, class Period, class Pred>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_MUTEX_H_
