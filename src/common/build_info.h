#ifndef DEEPEVEREST_COMMON_BUILD_INFO_H_
#define DEEPEVEREST_COMMON_BUILD_INFO_H_

namespace deepeverest {

/// \brief How this binary was built — surfaced by /healthz, /v1/stats, and
/// the deepeverest_build_info metric so a scrape identifies exactly what is
/// running. All strings are static; "unknown" when the build system did not
/// provide a value (e.g. building outside CMake or without git).
struct BuildInfo {
  const char* compiler;      ///< e.g. "gcc 13.2.0"
  const char* cxx_flags;     ///< CMAKE_CXX_FLAGS at configure time
  const char* build_type;    ///< CMAKE_BUILD_TYPE at configure time
  const char* git_describe;  ///< `git describe --always --dirty` at configure
};

const BuildInfo& GetBuildInfo();

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_BUILD_INFO_H_
