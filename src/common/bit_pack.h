#ifndef DEEPEVEREST_COMMON_BIT_PACK_H_
#define DEEPEVEREST_COMMON_BIT_PACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace deepeverest {

/// \brief Fixed-width bit-packed array of unsigned integers.
///
/// Stores `size` values of `bits_per_value` bits each, packed contiguously
/// into 64-bit words. This is the physical representation of the Neural
/// Partition Index: each (neuronID, inputID) slot holds a PID in
/// ceil(log2(nPartitions)) bits, which is where DeepEverest's storage savings
/// over full float32 materialisation come from (paper section 4.3).
class PackedIntArray {
 public:
  PackedIntArray() : size_(0), bits_per_value_(0) {}

  /// Creates an all-zero array of `size` values of `bits_per_value` bits.
  /// `bits_per_value` must be in [1, 64].
  PackedIntArray(size_t size, int bits_per_value)
      : size_(size), bits_per_value_(bits_per_value) {
    DE_CHECK_GE(bits_per_value, 1);
    DE_CHECK_LE(bits_per_value, 64);
    const size_t total_bits = size * static_cast<size_t>(bits_per_value);
    words_.assign((total_bits + 63) / 64, 0);
  }

  size_t size() const { return size_; }
  int bits_per_value() const { return bits_per_value_; }

  /// Bytes consumed by the packed payload (what gets persisted/accounted).
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Returns the value at `index`.
  uint64_t Get(size_t index) const {
    DE_CHECK_LT(index, size_);
    const size_t bit = index * static_cast<size_t>(bits_per_value_);
    const size_t word = bit >> 6;
    const int offset = static_cast<int>(bit & 63);
    const uint64_t mask = MaskOf(bits_per_value_);
    uint64_t value = words_[word] >> offset;
    if (offset + bits_per_value_ > 64) {
      value |= words_[word + 1] << (64 - offset);
    }
    return value & mask;
  }

  /// Bulk read: unpacks values [begin, begin + count) into out[0..count).
  /// Bounds are checked ONCE for the whole range, then the unpack runs
  /// word-at-a-time through the active kernel table (SIMD for widths that
  /// divide a word) — this is the reader API for the NPI/quantized hot
  /// paths; single-element Get stays for writers and point lookups.
  /// Defined in bit_pack.cc so this header does not pull in the kernel layer.
  void GetMany(size_t begin, size_t count, uint64_t* out) const;

  /// Stores `value` (must fit in bits_per_value bits) at `index`.
  void Set(size_t index, uint64_t value) {
    DE_CHECK_LT(index, size_);
    const uint64_t mask = MaskOf(bits_per_value_);
    DE_CHECK_LE(value, mask);
    const size_t bit = index * static_cast<size_t>(bits_per_value_);
    const size_t word = bit >> 6;
    const int offset = static_cast<int>(bit & 63);
    words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
    if (offset + bits_per_value_ > 64) {
      const int spill = offset + bits_per_value_ - 64;
      const uint64_t high_mask = MaskOf(spill);
      words_[word + 1] = (words_[word + 1] & ~high_mask) |
                         (value >> (bits_per_value_ - spill));
    }
  }

  /// Raw word access for serialisation.
  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>* mutable_words() { return &words_; }

  /// Rebuilds geometry after deserialising `words`.
  void RestoreGeometry(size_t size, int bits_per_value) {
    size_ = size;
    bits_per_value_ = bits_per_value;
  }

  /// Minimum number of bits needed to represent values in [0, n).
  /// BitsFor(1) == 1 by convention (an array of zeros still needs a lane).
  static int BitsFor(uint64_t n) {
    if (n <= 2) return 1;
    int bits = 0;
    uint64_t v = n - 1;
    while (v > 0) {
      ++bits;
      v >>= 1;
    }
    return bits;
  }

 private:
  static uint64_t MaskOf(int bits) {
    return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  }

  size_t size_;
  int bits_per_value_;
  std::vector<uint64_t> words_;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_BIT_PACK_H_
