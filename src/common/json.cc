#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace deepeverest {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::Prefix() {
  if (stack_.empty()) return;
  switch (stack_.back()) {
    case kObjectFirst:
    case kObjectNext:
      DE_CHECK(false) << "JSON value emitted inside an object without Key()";
      break;
    case kObjectValue:
      stack_.back() = kObjectNext;  // the pending key gets this value
      break;
    case kArrayFirst:
      stack_.back() = kArrayNext;
      break;
    case kArrayNext:
      out_.push_back(',');
      break;
  }
}

void JsonWriter::EndObject() {
  DE_CHECK(!stack_.empty() &&
           (stack_.back() == kObjectFirst || stack_.back() == kObjectNext))
      << "EndObject without matching BeginObject";
  stack_.pop_back();
  out_.push_back('}');
}

void JsonWriter::EndArray() {
  DE_CHECK(!stack_.empty() &&
           (stack_.back() == kArrayFirst || stack_.back() == kArrayNext))
      << "EndArray without matching BeginArray";
  stack_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(const std::string& name) {
  DE_CHECK(!stack_.empty() &&
           (stack_.back() == kObjectFirst || stack_.back() == kObjectNext))
      << "Key() outside an object";
  if (stack_.back() == kObjectNext) out_.push_back(',');
  stack_.back() = kObjectValue;
  out_ += Escape(name);
  out_.push_back(':');
}

void JsonWriter::String(const std::string& value) {
  Prefix();
  out_ += Escape(value);
}

void JsonWriter::Int(int64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Prefix();
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out_ += "null";
    return;
  }
  // Integral doubles print without an exponent or trailing ".0" — %.17g
  // already renders 5 as "5", which strtod parses back exactly.
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Prefix();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out.push_back('"');
  return out;
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    DE_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(depth, out);
      case '[': return ParseArray(depth, out);
      case '"': {
        std::string s;
        DE_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeNull();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      DE_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      JsonValue value;
      DE_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      DE_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          DE_RETURN_NOT_OK(ParseHex4(&code));
          // Surrogate pair → one code point outside the BMP.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            DE_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid UTF-16 low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired UTF-16 surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    if (pos_ >= text_.size()) return Error("truncated number");
    // RFC 8259 grammar: int [frac] [exp], no leading zeros, no leading '+'
    // or '.', which strtod alone would accept.
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace deepeverest
