#ifndef DEEPEVEREST_COMMON_RESULT_H_
#define DEEPEVEREST_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace deepeverest {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts, so
/// callers must check ok() (or use DE_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` or `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    DE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    DE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    DE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace deepeverest

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define DE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define DE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DE_ASSIGN_OR_RETURN_NAME(x, y) DE_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DE_ASSIGN_OR_RETURN(lhs, rexpr) \
  DE_ASSIGN_OR_RETURN_IMPL(             \
      DE_ASSIGN_OR_RETURN_NAME(_de_result_, __LINE__), lhs, rexpr)

#endif  // DEEPEVEREST_COMMON_RESULT_H_
