#ifndef DEEPEVEREST_COMMON_THREAD_ANNOTATIONS_H_
#define DEEPEVEREST_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang Thread Safety Analysis annotations, compiled away on every other
/// compiler.
///
/// These macros let the locking discipline of a type live in its
/// declaration instead of in comments: fields say which mutex guards them
/// (GUARDED_BY), internal helpers say what they expect held (REQUIRES) or
/// refuse to be called with (EXCLUDES), and `clang -Wthread-safety` turns
/// any violation — a stats field read without its mutex, a helper called
/// with the wrong lock — into a compile error. The CI clang legs build with
/// `-Wthread-safety -Werror`, so the annotations are enforced, not
/// advisory; GCC sees empty macros and is unaffected.
///
/// Use the `deepeverest::common::Mutex` / `MutexLock` / `CondVar` wrappers
/// (common/mutex.h) rather than raw std types: the std types carry no
/// annotations, so the analysis cannot see through them.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define DE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off-Clang
#endif

/// Marks a class as a capability (e.g. CAPABILITY("mutex")). Acquiring it
/// grants the capability named in the error messages.
#define CAPABILITY(x) DE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose lifetime equals holding a capability.
#define SCOPED_CAPABILITY DE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that the field it annotates is protected by the given
/// capability: any read or write outside a region holding it is an error.
#define GUARDED_BY(x) DE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Like GUARDED_BY, but guards the data a pointer/smart-pointer field
/// points to rather than the pointer itself.
#define PT_GUARDED_BY(x) DE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function-level precondition: the listed capabilities must be held on
/// entry (and are still held on exit). The `*Locked` helper convention.
#define REQUIRES(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// REQUIRES for shared (reader) access.
#define REQUIRES_SHARED(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define RELEASE(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value
/// (e.g. TRY_ACQUIRE(true) on a try_lock that returns bool).
#define TRY_ACQUIRE(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The listed capabilities must NOT be held on entry — the anti-deadlock
/// annotation for functions that acquire the mutex themselves.
#define EXCLUDES(...) DE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference/pointer to the given capability.
#define RETURN_CAPABILITY(x) DE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Assert-style: tells the analysis the capability is held here without
/// acquiring it (for runtime-checked invariants the analysis cannot see).
#define ASSERT_CAPABILITY(x) \
  DE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a one-line justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  DE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DEEPEVEREST_COMMON_THREAD_ANNOTATIONS_H_
