#ifndef DEEPEVEREST_COMMON_JSON_H_
#define DEEPEVEREST_COMMON_JSON_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace deepeverest {

/// \brief Minimal hand-rolled JSON support for the network front-end: a
/// streaming writer and a recursive-descent reader. Dependency-free by
/// design (the container bakes in no JSON library) and small on purpose —
/// it covers exactly RFC 8259 JSON, nothing more (no comments, no NaN/Inf,
/// no trailing commas).
///
/// Doubles are written with 17 significant digits, so every finite value
/// round-trips bit-identically through write → parse (strtod) — the
/// property the server-e2e bit-equality check rests on.

/// \brief Appends JSON tokens to an internal buffer, inserting commas and
/// validating nesting via a small state stack.
///
/// \code
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("entries");
///   w.BeginArray();
///   w.Int(42);
///   w.EndArray();
///   w.EndObject();
///   send(w.str());
/// \endcode
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  void BeginObject() { Prefix(); out_.push_back('{'); stack_.push_back(kObjectFirst); }
  void EndObject();
  void BeginArray() { Prefix(); out_.push_back('['); stack_.push_back(kArrayFirst); }
  void EndArray();

  /// Object member key; must be followed by exactly one value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid once every Begin* has been matched.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Escapes `value` as a JSON string literal (quotes included).
  static std::string Escape(const std::string& value);

 private:
  enum State : char {
    kObjectFirst,  // inside {, no member yet
    kObjectNext,   // inside {, needs ',' before the next key
    kObjectValue,  // after a Key(), exactly one value expected
    kArrayFirst,   // inside [, no element yet
    kArrayNext,    // inside [, needs ',' before the next element
  };

  /// Emits any needed separator for the next value and updates the state.
  void Prefix();

  std::string out_;
  std::vector<char> stack_;
};

/// \brief A parsed JSON document node (tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  /// The number truncated toward zero, saturated to the int64 range (a
  /// plain cast of an out-of-range double is undefined behaviour, and
  /// numbers here can come straight off the wire). NaN maps to 0.
  int64_t int_value() const {
    if (std::isnan(number_)) return 0;
    // 2^63 is exactly representable; the comparison bounds are exact.
    if (number_ >= 9223372036854775808.0) {
      return std::numeric_limits<int64_t>::max();
    }
    if (number_ < -9223372036854775808.0) {
      return std::numeric_limits<int64_t>::min();
    }
    return static_cast<int64_t>(number_);
  }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return members_;
  }

  /// Member lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (object, array, or scalar). The whole input
/// must be consumed (trailing whitespace allowed); errors return
/// InvalidArgument with a byte offset. Nesting is limited to 64 levels.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_JSON_H_
