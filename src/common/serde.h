#ifndef DEEPEVEREST_COMMON_SERDE_H_
#define DEEPEVEREST_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace deepeverest {

/// \brief Append-only binary encoder into an in-memory buffer.
///
/// Fixed-width little-endian primitives plus length-prefixed blobs. The
/// format is the on-disk representation for NPI/MAI indexes and activation
/// files; see storage/file_store.h for persistence.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteF32(float v) { Append(&v, sizeof(v)); }
  void WriteF64(double v) { Append(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    Append(s.data(), s.size());
  }

  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    Append(v.data(), v.size() * sizeof(float));
  }

  void WriteU32Vector(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    Append(v.data(), v.size() * sizeof(uint32_t));
  }

  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU64(v.size());
    Append(v.data(), v.size() * sizeof(uint64_t));
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void Append(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<uint8_t> buffer_;
};

/// \brief Bounds-checked decoder over a byte buffer written by BinaryWriter.
///
/// Every Read* returns a Status so a truncated or corrupt file surfaces as
/// IOError instead of undefined behaviour.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BinaryReader(const std::vector<uint8_t>& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  Status ReadU8(uint8_t* out) { return Fixed(out, 1); }
  Status ReadU32(uint32_t* out) { return Fixed(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return Fixed(out, sizeof(*out)); }
  Status ReadI32(int32_t* out) { return Fixed(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return Fixed(out, sizeof(*out)); }
  Status ReadF32(float* out) { return Fixed(out, sizeof(*out)); }
  Status ReadF64(double* out) { return Fixed(out, sizeof(*out)); }

  Status ReadString(std::string* out);
  Status ReadF32Vector(std::vector<float>* out);
  Status ReadU32Vector(std::vector<uint32_t>* out);
  Status ReadU64Vector(std::vector<uint64_t>* out);

  /// Advances past `n` bytes without copying (skipping a framed payload
  /// that was already consumed out-of-band).
  Status Skip(uint64_t n) {
    if (n > size_ - pos_) {
      return Status::IOError("truncated buffer: cannot skip " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(size_ - pos_));
    }
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Fixed(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::IOError("truncated buffer: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(size_ - pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadLength(uint64_t* len, size_t element_size);

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_COMMON_SERDE_H_
